(* Tests for pn_util: PRNG, special functions, array helpers. *)

module Rng = Pn_util.Rng
module Stats = Pn_util.Stats
module Arr = Pn_util.Arr
module Pool = Pn_util.Pool

let check_float = Alcotest.(check (float 1e-9))

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_coverage () =
  let rng = Rng.create 5 in
  let seen = Array.make 7 0 in
  for _ = 1 to 7_000 do
    seen.(Rng.int rng 7) <- seen.(Rng.int rng 7) + 1
  done;
  Array.iteri (fun i c -> if c = 0 then Alcotest.failf "value %d never drawn" i) seen

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_rng_float_mean () =
  let rng = Rng.create 6 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  check_close 0.01 "uniform mean" 0.5 (!sum /. float_of_int n)

let test_rng_bernoulli () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.1 then incr hits
  done;
  check_close 0.01 "bernoulli(0.1)" 0.1 (float_of_int !hits /. float_of_int n)

let test_rng_gaussian_moments () =
  let rng = Rng.create 9 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  check_close 0.02 "mean" 0.0 (Stats.mean xs);
  check_close 0.02 "stddev" 1.0 (Stats.stddev xs)

let test_rng_triangular_range () =
  let rng = Rng.create 10 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.triangular rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "triangular out of range: %f" v;
    sum := !sum +. v
  done;
  check_close 0.01 "triangular mean" 0.5 (!sum /. float_of_int n)

let test_rng_shuffle_multiset () =
  let rng = Rng.create 11 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_choose () =
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [| 5; 6; 7 |] in
    if v < 5 || v > 7 then Alcotest.failf "choose out of set: %d" v
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create 13 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng ~n:30 ~k:10 in
    Alcotest.(check int) "size" 10 (Array.length s);
    for i = 0 to 8 do
      if s.(i) >= s.(i + 1) then Alcotest.fail "not strictly increasing (duplicate?)"
    done;
    Array.iter (fun v -> if v < 0 || v >= 30 then Alcotest.failf "range: %d" v) s
  done;
  let all = Rng.sample_without_replacement rng ~n:5 ~k:5 in
  Alcotest.(check (array int)) "k=n" [| 0; 1; 2; 3; 4 |] all

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_known () =
  check_close 1e-9 "lgamma(1)" 0.0 (Stats.log_gamma 1.0);
  check_close 1e-9 "lgamma(2)" 0.0 (Stats.log_gamma 2.0);
  check_close 1e-8 "lgamma(5)=ln 24" (log 24.0) (Stats.log_gamma 5.0);
  check_close 1e-8 "lgamma(0.5)=ln sqrt(pi)"
    (0.5 *. log Float.pi)
    (Stats.log_gamma 0.5)

let test_log_comb () =
  check_close 1e-9 "C(n,0)" 0.0 (Stats.log_comb 10.0 0.0);
  check_close 1e-9 "C(n,n)" 0.0 (Stats.log_comb 10.0 10.0);
  check_close 1e-7 "C(10,3)=120" (Stats.log2 120.0) (Stats.log_comb 10.0 3.0);
  check_close 1e-7 "symmetry" (Stats.log_comb 20.0 6.0) (Stats.log_comb 20.0 14.0)

let test_entropy () =
  check_float "uniform 2" 1.0 (Stats.entropy [| 1.0; 1.0 |]);
  check_float "uniform 4" 2.0 (Stats.entropy [| 3.0; 3.0; 3.0; 3.0 |]);
  check_float "pure" 0.0 (Stats.entropy [| 5.0; 0.0 |]);
  check_float "empty" 0.0 (Stats.entropy [||]);
  check_close 1e-9 "skip zeros" (Stats.entropy [| 1.0; 1.0 |])
    (Stats.entropy [| 1.0; 0.0; 1.0 |])

let test_binomial_upper_basic () =
  (* e = 0 closed form: 1 - cf^(1/n). *)
  check_close 1e-9 "e=0" (1.0 -. (0.25 ** 0.1)) (Stats.binomial_upper ~cf:0.25 ~n:10.0 ~e:0.0);
  let u = Stats.binomial_upper ~cf:0.25 ~n:100.0 ~e:10.0 in
  if u <= 0.1 || u >= 1.0 then Alcotest.failf "upper limit should exceed e/n: %f" u;
  check_float "n=0" 1.0 (Stats.binomial_upper ~cf:0.25 ~n:0.0 ~e:0.0);
  check_float "e>=n" 1.0 (Stats.binomial_upper ~cf:0.25 ~n:5.0 ~e:5.0)

let test_binomial_upper_monotone () =
  let prev = ref 0.0 in
  List.iter
    (fun e ->
      let u = Stats.binomial_upper ~cf:0.25 ~n:50.0 ~e in
      if u < !prev then Alcotest.failf "not monotone in e at %f" e;
      prev := u)
    [ 0.0; 1.0; 2.0; 5.0; 10.0; 25.0 ];
  (* More cases with the same error rate → tighter (smaller) limit. *)
  let u_small = Stats.binomial_upper ~cf:0.25 ~n:10.0 ~e:1.0 in
  let u_large = Stats.binomial_upper ~cf:0.25 ~n:100.0 ~e:10.0 in
  if u_large >= u_small then Alcotest.fail "limit should tighten with n"

let test_binomial_upper_quinlan () =
  (* Quinlan's book example: U_0.25(0, 6) ≈ 0.206. *)
  check_close 5e-3 "U25(0,6)" 0.206 (Stats.binomial_upper ~cf:0.25 ~n:6.0 ~e:0.0)

let test_normal_cdf () =
  check_close 1e-6 "phi(0)" 0.5 (Stats.normal_cdf 0.0);
  check_close 1e-4 "phi(1.96)" 0.975 (Stats.normal_cdf 1.96);
  check_close 1e-4 "phi(-1.96)" 0.025 (Stats.normal_cdf (-1.96));
  check_close 1e-6 "symmetry" 1.0 (Stats.normal_cdf 1.3 +. Stats.normal_cdf (-1.3))

let test_normal_quantile () =
  check_close 1e-6 "q(0.5)" 0.0 (Stats.normal_quantile 0.5);
  List.iter
    (fun p -> check_close 1e-6 "roundtrip" p (Stats.normal_cdf (Stats.normal_quantile p)))
    [ 0.001; 0.01; 0.2; 0.5; 0.8; 0.99; 0.999 ]

let test_two_proportion_z () =
  check_float "equal" 0.0 (Stats.two_proportion_z ~p1:0.3 ~n1:100.0 ~p2:0.3 ~n2:50.0);
  let z = Stats.two_proportion_z ~p1:0.6 ~n1:100.0 ~p2:0.4 ~n2:100.0 in
  if z <= 0.0 then Alcotest.fail "sign";
  check_close 1e-9 "antisymmetric" (-.z)
    (Stats.two_proportion_z ~p1:0.4 ~n1:100.0 ~p2:0.6 ~n2:100.0);
  check_float "degenerate n" 0.0 (Stats.two_proportion_z ~p1:0.3 ~n1:0.0 ~p2:0.5 ~n2:10.0)

let test_mean_stddev () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_close 1e-9 "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [| 1.0; 2.0; 3.0 |])

(* ------------------------------------------------------------------ *)
(* Arr                                                                  *)
(* ------------------------------------------------------------------ *)

let test_argsort () =
  let a = [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (array int)) "order" [| 1; 2; 0 |] (Arr.argsort_floats a);
  Alcotest.(check (array int)) "stability" [| 0; 1; 2 |]
    (Arr.argsort_floats [| 1.0; 1.0; 1.0 |])

let test_max_by () =
  Alcotest.(check int) "max" 3 (Arr.max_by float_of_int [| 1; 3; 2 |]);
  Alcotest.(check int) "first on tie" 3 (Arr.max_by (fun x -> float_of_int (x mod 2)) [| 3; 5; 2 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Arr.max_by: empty array") (fun () ->
      ignore (Arr.max_by float_of_int [||]))

let test_take_range_filteri () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Arr.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Arr.take 5 [ 1 ]);
  Alcotest.(check (list int)) "take zero" [] (Arr.take 0 [ 1 ]);
  Alcotest.(check (array int)) "range" [| 0; 1; 2 |] (Arr.range 3);
  Alcotest.(check (array int)) "filteri" [| 10; 30 |]
    (Arr.filteri (fun i _ -> i mod 2 = 0) [| 10; 20; 30 |])

let test_sums () =
  check_float "sum" 6.0 (Arr.sum_floats [| 1.0; 2.0; 3.0 |]);
  check_float "mean_of" 2.0 (Arr.mean_of float_of_int [| 1; 2; 3 |]);
  check_float "mean_of empty" 0.0 (Arr.mean_of float_of_int [||])

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_sequential () =
  Alcotest.(check int) "size" 1 (Pool.size Pool.sequential);
  Alcotest.(check int) "create 1 is sequential" 1 (Pool.size (Pool.create ~domains:1));
  Alcotest.(check int) "create 0 clamps" 1 (Pool.size (Pool.create ~domains:0));
  Alcotest.(check (array int)) "map"
    [| 0; 2; 4 |]
    (Pool.map_array Pool.sequential 3 (fun i -> 2 * i));
  Alcotest.(check (array int)) "empty" [||] (Pool.map_array Pool.sequential 0 (fun i -> i))

let test_pool_map_matches_init () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 4 (Pool.size pool);
      for n = 0 to 40 do
        let expected = Array.init n (fun i -> (i * i) - (3 * i)) in
        let got = Pool.map_array pool n (fun i -> (i * i) - (3 * i)) in
        Alcotest.(check (array int)) (Printf.sprintf "n=%d" n) expected got
      done;
      (* A bigger job than the pool, repeatedly, to exercise re-dispatch. *)
      for _ = 1 to 20 do
        let got = Pool.map_array pool 500 (fun i -> i + 1) in
        Alcotest.(check (array int)) "large" (Array.init 500 (fun i -> i + 1)) got
      done)

let test_pool_exception () =
  let pool = Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (try
         ignore
           (Pool.map_array pool 8 (fun i ->
                if i = 5 then failwith "boom" else i));
         Alcotest.fail "expected exception"
       with Failure msg -> Alcotest.(check string) "propagated" "boom" msg);
      (* The pool survives a failed job. *)
      Alcotest.(check (array int)) "still works"
        [| 0; 1; 2; 3 |]
        (Pool.map_array pool 4 (fun i -> i)))

(* The PNRULE_DOMAINS parsing contract: positive integers (whitespace
   tolerated, capped at 64) are accepted; anything else is a descriptive
   error so [get_default] can warn and fall back to sequential. *)
let test_pool_domains_of_env () =
  let check_ok raw expected =
    match Pool.domains_of_env raw with
    | Ok d -> Alcotest.(check int) (Printf.sprintf "%S" raw) expected d
    | Error msg -> Alcotest.failf "%S rejected: %s" raw msg
  in
  let check_err raw =
    match Pool.domains_of_env raw with
    | Ok d -> Alcotest.failf "%S accepted as %d" raw d
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions the value" raw)
        true
        (msg <> "")
  in
  check_ok "1" 1;
  check_ok "4" 4;
  check_ok " 8 " 8;
  check_ok "64" 64;
  (* Values past the cap clamp rather than fail. *)
  check_ok "100" 64;
  check_err "";
  check_err "garbage";
  check_err "4.5";
  check_err "0";
  check_err "-3"

let test_pool_shutdown_degrades () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Alcotest.(check (array int)) "sequential after shutdown"
    [| 0; 1; 2 |]
    (Pool.map_array pool 3 (fun i -> i))

(* A map_array issued from inside a pool job must degrade to sequential
   execution instead of clobbering the in-flight job (parallel harness
   evaluation wraps training that fans attribute scans on the same
   pool). *)
let test_pool_nested () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let sum = Array.fold_left ( + ) 0 in
      let got =
        Pool.map_array pool 12 (fun i ->
            sum (Pool.map_array pool 50 (fun j -> (i * j) + 1)))
      in
      let expected =
        Array.init 12 (fun i -> sum (Array.init 50 (fun j -> (i * j) + 1)))
      in
      Alcotest.(check (array int)) "nested map matches" expected got)

(* ------------------------------------------------------------------ *)
(* Bitset                                                               *)
(* ------------------------------------------------------------------ *)

module Bitset = Pn_util.Bitset

let test_bitset_basics () =
  Alcotest.(check int) "words_for 0" 0 (Bitset.words_for 0);
  Alcotest.(check int) "words_for 1" 1 (Bitset.words_for 1);
  Alcotest.(check int) "words_for word" 1 (Bitset.words_for Bitset.bits_per_word);
  Alcotest.(check int) "words_for word+1" 2 (Bitset.words_for (Bitset.bits_per_word + 1));
  let t = Bitset.create 130 in
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty t);
  Bitset.set t 0;
  Bitset.set t 64;
  Bitset.set t 129;
  Alcotest.(check bool) "get set" true (Bitset.get t 64);
  Alcotest.(check bool) "get unset" false (Bitset.get t 63);
  Alcotest.(check int) "count" 3 (Bitset.count t);
  Alcotest.(check (array int)) "to_indices" [| 0; 64; 129 |] (Bitset.to_indices t);
  let full = Bitset.full 130 in
  Alcotest.(check int) "full count" 130 (Bitset.count full);
  Bitset.diff ~into:full t;
  Alcotest.(check int) "diff count" 127 (Bitset.count full);
  Alcotest.(check bool) "diff cleared" false (Bitset.get full 64);
  Bitset.inter ~into:full t;
  Alcotest.(check bool) "inter disjoint empty" true (Bitset.is_empty full)

let bitset_ops_prop (n, sets_a, sets_b) =
  n = 0
  ||
  let a_idx = List.sort_uniq Int.compare (List.map (fun j -> j mod n) sets_a) in
  let b_idx = List.sort_uniq Int.compare (List.map (fun j -> j mod n) sets_b) in
  let a = Bitset.create n and b = Bitset.create n in
  List.iter (Bitset.set a) a_idx;
  List.iter (Bitset.set b) b_idx;
  let copy_of t =
    let c = Bitset.create n in
    Array.blit (Bitset.words t) 0 (Bitset.words c) 0 (Bitset.words_for n);
    c
  in
  let inter = copy_of a in
  Bitset.inter ~into:inter b;
  let diff = copy_of a in
  Bitset.diff ~into:diff b;
  let mem l i = List.mem i l in
  List.init n (Bitset.get inter)
  = List.init n (fun i -> mem a_idx i && mem b_idx i)
  && List.init n (Bitset.get diff)
     = List.init n (fun i -> mem a_idx i && not (mem b_idx i))
  && Bitset.count a = List.length a_idx
  && Bitset.to_indices a = Array.of_list a_idx
  && Bitset.is_empty a = (a_idx = [])

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"bitset ops match naive sets"
      QCheck.(triple (int_range 0 200) (list small_nat) (list small_nat))
      bitset_ops_prop;
    QCheck.Test.make ~count:200 ~name:"rng int always in bounds"
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~count:200 ~name:"argsort output is sorted"
      QCheck.(array_of_size Gen.(int_range 0 50) (float_range (-100.) 100.))
      (fun a ->
        let idx = Arr.argsort_floats a in
        let ok = ref true in
        for i = 0 to Array.length idx - 2 do
          if a.(idx.(i)) > a.(idx.(i + 1)) then ok := false
        done;
        !ok && Array.length idx = Array.length a);
    QCheck.Test.make ~count:100 ~name:"binomial_upper in [e/n, 1]"
      QCheck.(pair (int_range 1 200) (int_range 0 200))
      (fun (n, e) ->
        let n = float_of_int n and e = float_of_int (min e n) in
        let e = Float.min e n in
        let u = Stats.binomial_upper ~cf:0.25 ~n ~e in
        u >= (e /. n) -. 1e-9 && u <= 1.0 +. 1e-9);
    QCheck.Test.make ~count:100 ~name:"entropy bounded by log2 k"
      QCheck.(array_of_size Gen.(int_range 1 8) (float_range 0.0 10.0))
      (fun a ->
        let h = Stats.entropy a in
        h >= -1e-9 && h <= Stats.log2 (float_of_int (Array.length a)) +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng: copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng: split" `Quick test_rng_split_diverges;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int invalid" `Quick test_rng_int_invalid;
    Alcotest.test_case "rng: int coverage" `Quick test_rng_int_coverage;
    Alcotest.test_case "rng: float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng: float mean" `Quick test_rng_float_mean;
    Alcotest.test_case "rng: bernoulli" `Quick test_rng_bernoulli;
    Alcotest.test_case "rng: gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng: triangular" `Quick test_rng_triangular_range;
    Alcotest.test_case "rng: shuffle is permutation" `Quick test_rng_shuffle_multiset;
    Alcotest.test_case "rng: choose" `Quick test_rng_choose;
    Alcotest.test_case "rng: sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "stats: log_gamma" `Quick test_log_gamma_known;
    Alcotest.test_case "stats: log_comb" `Quick test_log_comb;
    Alcotest.test_case "stats: entropy" `Quick test_entropy;
    Alcotest.test_case "stats: binomial upper basics" `Quick test_binomial_upper_basic;
    Alcotest.test_case "stats: binomial upper monotone" `Quick test_binomial_upper_monotone;
    Alcotest.test_case "stats: binomial upper (Quinlan)" `Quick test_binomial_upper_quinlan;
    Alcotest.test_case "stats: normal cdf" `Quick test_normal_cdf;
    Alcotest.test_case "stats: normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "stats: two-proportion z" `Quick test_two_proportion_z;
    Alcotest.test_case "stats: mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "arr: argsort" `Quick test_argsort;
    Alcotest.test_case "arr: max_by" `Quick test_max_by;
    Alcotest.test_case "arr: take/range/filteri" `Quick test_take_range_filteri;
    Alcotest.test_case "arr: sums" `Quick test_sums;
    Alcotest.test_case "pool: sequential" `Quick test_pool_sequential;
    Alcotest.test_case "pool: map matches init" `Quick test_pool_map_matches_init;
    Alcotest.test_case "pool: exception propagates" `Quick test_pool_exception;
    Alcotest.test_case "pool: shutdown degrades" `Quick test_pool_shutdown_degrades;
    Alcotest.test_case "pool: PNRULE_DOMAINS parsing" `Quick test_pool_domains_of_env;
    Alcotest.test_case "pool: nested map degrades" `Quick test_pool_nested;
    Alcotest.test_case "bitset: basics" `Quick test_bitset_basics;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
