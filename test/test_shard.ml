(* End-to-end tests for the sharded serving tier (lib/shard): an
   in-process router supervising real [pnrule serve] child processes
   (the built CLI binary), exercised by real TCP clients. The core
   robustness claims are tested literally: SIGKILL a shard under
   concurrent load and lose nothing; roll a generation across the fleet
   and abort cleanly on an injected warm failure; lose every shard and
   keep answering 503 with a retry hint. *)

module Router = Pn_shard.Router
module R = Pnrule.Registry
module F = Pn_util.Fault
module Client = Test_server.Client

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* The router tests exec the real CLI binary: the test executable lives
   at _build/default/test/main.exe, the CLI one directory over (a dune
   dep keeps it fresh). *)
let cli_exe =
  lazy
    (let p =
       Filename.concat
         (Filename.dirname Sys.executable_name)
         "../bin/pnrule_cli.exe"
     in
     if Sys.file_exists p then p
     else Alcotest.failf "CLI binary missing at %s (dune dependency broken?)" p)

(* Tests that arm fault points programmatically must put the process
   back the way chaos CI set it up, or every later suite runs with the
   wrong schedule. *)
let with_faults arm body =
  F.reset ();
  arm ();
  Fun.protect
    ~finally:(fun () ->
      F.reset ();
      match Sys.getenv_opt "PNRULE_FAULTS" with
      | Some spec -> ignore (F.arm_spec spec)
      | None -> ())
    body

(* Under a chaos env (PNRULE_FAULTS set) the router's own proxy legs
   take scheduled faults, so "exactly N" accounting claims relax to
   ">= N" — correctness claims (statuses, bytes) never relax. *)
let chaos_env = Sys.getenv_opt "PNRULE_FAULTS" <> None

let wait_until ?(timeout = 30.0) msg f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* A fresh registry directory holding the shared fixture model as
   gen-1. *)
let make_registry () =
  let model, _, _, _ = Lazy.force Test_server.fixture in
  let dir = Filename.temp_file "pnrule_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let reg = R.open_dir dir in
  let gen = R.publish reg model in
  Alcotest.(check int) "fixture generation" 1 gen;
  (dir, reg)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Shards must score with the fixture's reference chunk size or the
   byte-identity checks are vacuous. One worker domain per shard keeps
   the fleet honest on small CI machines. *)
let serve_argv registry ~index:_ ~port =
  [|
    Lazy.force cli_exe;
    "serve";
    "--registry";
    registry;
    "--host";
    "127.0.0.1";
    "--port";
    string_of_int port;
    "--domains";
    "1";
    "--chunk";
    "256";
  |]

let router_config ?(backends = 2) ?(backend_env = fun ~index:_ -> None)
    ?(backend_argv = serve_argv) registry =
  {
    Router.default_config with
    backends;
    domains = 2;
    backend_argv = backend_argv registry;
    backend_env;
    probe_interval = 0.02;
    start_budget = 25.0;
  }

(* Boot a router over a fresh fixture registry, run [body], and always
   stop the fleet and remove the registry. [wait] (default true) blocks
   until every shard is in rotation. *)
let with_router ?(backends = 2) ?backend_env ?backend_argv ?(wait = true) body =
  let dir, reg = make_registry () in
  let t =
    Router.start
      ~config:(router_config ~backends ?backend_env ?backend_argv dir)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop t;
      rm_rf dir)
    (fun () ->
      if wait then
        wait_until "fleet healthy" (fun () -> Router.healthy_count t = backends);
      body t reg)

let scrape t =
  let s, _, body =
    Test_server.one_shot (Router.port t) ~meth:"GET" ~path:"/metrics" ()
  in
  Alcotest.(check int) "metrics scrape status" 200 s;
  body

let metric = Test_server.metric_value

let backend_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false

(* ------------------------------------------------------------------ *)
(* e2e: byte-identity through the router, merged metrics, rolling
   rollout, clean shutdown                                              *)
(* ------------------------------------------------------------------ *)

let test_sharded_e2e () =
  let _, body, expected, _ = Lazy.force Test_server.fixture in
  with_router ~backends:2 (fun t reg ->
      let port = Router.port t in
      let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz" 200 s;
      Alcotest.(check string) "healthz body" "ok 2/2 backends healthy\n" b;
      (* Concurrent keep-alive clients; every response must carry the
         batch pipeline's exact bytes even though any shard may serve
         any request. *)
      let clients = 3 and reqs = 4 in
      let results =
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                let c = Client.connect port in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    List.init reqs (fun _ ->
                        Client.request c ~meth:"POST" ~path:"/predict" ~body ()))))
        |> List.map Domain.join
      in
      List.iter
        (List.iter (fun (status, _, got) ->
             Alcotest.(check int) "predict status" 200 status;
             Alcotest.(check string) "byte-identical through the router"
               expected got))
        results;
      let total = float_of_int (clients * reqs) in
      let m = scrape t in
      (* Router accounting and the merged fleet scrape must agree: the
         router saw N predicts, and the shards' summed
         pnrule_requests_total says they served N between them (a chaos
         schedule can add a failover re-dispatch, so >= under chaos). *)
      let router_seen = metric m "pnrule_router_requests_total{endpoint=\"predict\"}" in
      let fleet_served = metric m "pnrule_requests_total{endpoint=\"predict\"}" in
      Alcotest.(check (float 0.0)) "router predict count" total router_seen;
      if chaos_env then
        Alcotest.(check bool)
          "fleet served at least the admitted predicts" true
          (fleet_served >= total)
      else
        Alcotest.(check (float 0.0))
          "fleet served exactly the admitted predicts" total fleet_served;
      Alcotest.(check (float 0.0))
        "no predict errors" 0.0
        (metric m "pnrule_router_request_errors_total{endpoint=\"predict\"}");
      Alcotest.(check (float 0.0))
        "both shards in rotation" 2.0
        (metric m "pnrule_router_backends_healthy");
      (* Rolling rollout: publish gen-2, flip the fleet one shard at a
         time through the router, then confirm every shard serves it. *)
      let model, _, _, _ = Lazy.force Test_server.fixture in
      let gen2 = R.publish reg model in
      Alcotest.(check int) "second generation" 2 gen2;
      let s, _, rb =
        Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollout" ()
      in
      Alcotest.(check int) "rollout status" 200 s;
      Alcotest.(check bool)
        "rollout response names the action" true
        (contains rb "\"action\": \"rollout\"");
      let s, _, mb = Test_server.one_shot port ~meth:"GET" ~path:"/model" () in
      Alcotest.(check int) "model status" 200 s;
      Alcotest.(check bool)
        "all shards on generation 2" true
        (contains mb "\"generation\": 2" && not (contains mb "\"generation\": 1"));
      (* Predictions are unchanged across the flip (same model bytes). *)
      let s, _, got =
        Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
      in
      Alcotest.(check int) "post-rollout predict" 200 s;
      Alcotest.(check string) "post-rollout bytes" expected got;
      (* Rollback walks the fleet down again. *)
      let s, _, _ =
        Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollback" ()
      in
      Alcotest.(check int) "rollback status" 200 s;
      let _, _, mb = Test_server.one_shot port ~meth:"GET" ~path:"/model" () in
      Alcotest.(check bool)
        "all shards back on generation 1" true
        (contains mb "\"generation\": 1" && not (contains mb "\"generation\": 2"));
      let pids = [ Router.backend_pid t 0; Router.backend_pid t 1 ] in
      Router.stop t;
      (* The drain rolled SIGTERM across the fleet and reaped it: no
         shard processes survive the router. *)
      wait_until ~timeout:10.0 "shards exit after drain" (fun () ->
          List.for_all (fun pid -> not (backend_alive pid)) pids))

(* ------------------------------------------------------------------ *)
(* Deterministic failover and retry accounting                          *)
(* ------------------------------------------------------------------ *)

(* Satellite: pnrule_router_failovers_total (whole requests re-dispatched
   to another shard) and pnrule_router_proxy_io_retries_total (transient
   IO retries inside one proxy leg) are distinct series and must
   reconcile with what was injected. *)
let test_failover_accounting () =
  let _, body, expected, _ = Lazy.force Test_server.fixture in
  with_router ~backends:2 (fun t _reg ->
      let port = Router.port t in
      (* A hard read fault on the first proxy leg: the shard is tripped
         and the buffered request transparently retries on the other
         shard — the client sees one clean 200. *)
      with_faults
        (fun () -> F.arm ~times:1 "router.proxy_read" F.Raise)
        (fun () ->
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict despite dead leg" 200 s;
          Alcotest.(check string) "failover is byte-identical" expected got;
          let m = scrape t in
          Alcotest.(check (float 0.0))
            "exactly one failover" 1.0
            (metric m "pnrule_router_failovers_total");
          Alcotest.(check (float 0.0))
            "client saw no error" 0.0
            (metric m
               "pnrule_router_request_errors_total{endpoint=\"predict\"}"));
      (* Transient EINTRs on the write leg: absorbed in place by the
         bounded retry loop — retries are accounted, no failover. *)
      wait_until "fleet recovers from the tripped leg" (fun () ->
          Router.healthy_count t = 2);
      with_faults
        (fun () -> F.arm ~times:3 "router.proxy_write" F.Eintr)
        (fun () ->
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict despite EINTR storm" 200 s;
          Alcotest.(check string) "retried leg is byte-identical" expected got;
          let m = scrape t in
          Alcotest.(check (float 0.0))
            "the three injected EINTRs are accounted as proxy retries" 3.0
            (metric m "pnrule_router_proxy_io_retries_total");
          Alcotest.(check (float 0.0))
            "retries did not inflate failovers" 1.0
            (metric m "pnrule_router_failovers_total"));
      (* Both legs hard-fail: the router answers a deterministic 502 —
         it never hangs and never fabricates a prediction. *)
      wait_until "fleet recovers again" (fun () -> Router.healthy_count t = 2);
      with_faults
        (fun () -> F.arm ~times:2 "router.proxy_read" F.Raise)
        (fun () ->
          let s, _, b =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "502 when every healthy leg fails" 502 s;
          Alcotest.(check string) "502 names the exhaustion"
            "all 2 healthy backends failed; retry later\n" b);
      wait_until "fleet recovers from the double trip" (fun () ->
          Router.healthy_count t = 2))

(* ------------------------------------------------------------------ *)
(* Chaos: SIGKILL a shard under concurrent load                         *)
(* ------------------------------------------------------------------ *)

let test_shard_death_under_load () =
  let _, body, expected, _ = Lazy.force Test_server.fixture in
  with_router ~backends:3 (fun t _reg ->
      let port = Router.port t in
      let victim = Router.backend_pid t 0 in
      Alcotest.(check bool) "victim shard is running" true (victim > 0);
      let clients = 3 and reqs = 12 in
      let workers =
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                let c = Client.connect port in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    List.init reqs (fun _ ->
                        Client.request c ~meth:"POST" ~path:"/predict" ~body ()))))
      in
      (* Kill -9 one shard mid-load. Requests in flight on it are
         transparently re-dispatched; no admitted request may fail. *)
      Unix.sleepf 0.05;
      Unix.kill victim Sys.sigkill;
      let results = List.map Domain.join workers in
      List.iter
        (List.iter (fun (status, _, got) ->
             Alcotest.(check int) "predict status across shard death" 200
               status;
             Alcotest.(check string) "bytes identical across shard death"
               expected got))
        results;
      let m = scrape t in
      Alcotest.(check (float 0.0))
        "zero client-visible predict errors" 0.0
        (metric m "pnrule_router_request_errors_total{endpoint=\"predict\"}");
      Alcotest.(check (float 0.0))
        "every admitted predict answered" (float_of_int (clients * reqs))
        (metric m "pnrule_router_requests_total{endpoint=\"predict\"}");
      (* The supervisor reaps the corpse and respawns within the backoff
         budget; the fleet returns to full strength. *)
      wait_until "respawn observed" (fun () ->
          metric (scrape t) "pnrule_router_respawns_total" >= 1.0);
      wait_until "fleet back to 3/3" (fun () -> Router.healthy_count t = 3);
      Alcotest.(check bool)
        "respawned shard has a fresh pid" true
        (Router.backend_pid t 0 > 0 && Router.backend_pid t 0 <> victim);
      let s, _, got =
        Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
      in
      Alcotest.(check int) "predict after recovery" 200 s;
      Alcotest.(check string) "recovered shard serves identical bytes" expected
        got)

(* ------------------------------------------------------------------ *)
(* Graceful degradation: every shard down                               *)
(* ------------------------------------------------------------------ *)

let test_all_backends_down () =
  let broken _registry ~index:_ ~port:_ =
    [| "/nonexistent/pnrule-shard-backend"; "serve" |]
  in
  with_router ~backends:2 ~backend_argv:broken ~wait:false (fun t _reg ->
      let port = Router.port t in
      (* The supervisor keeps trying (and accounting) spawns that can
         never succeed... *)
      wait_until "spawn failures accounted" (fun () ->
          let m = scrape t in
          metric m "pnrule_router_spawn_failures_total" >= 1.0
          || metric m "pnrule_router_respawns_total" >= 1.0);
      Alcotest.(check int) "no shard in rotation" 0 (Router.healthy_count t);
      (* ...while the router itself stays up and degrades gracefully:
         503 + Retry-After, never a hang or a crash. *)
      let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz is 503" 503 s;
      Alcotest.(check string) "healthz names the condition"
        "no healthy backends\n" b;
      let s, hs, b =
        Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body:"x\n" ()
      in
      Alcotest.(check int) "predict is 503" 503 s;
      Alcotest.(check (option string))
        "predict carries Retry-After" (Some "1")
        (List.assoc_opt "retry-after" hs);
      Alcotest.(check string) "predict names the condition"
        "no healthy backends; retry later\n" b;
      let m = scrape t in
      Alcotest.(check bool)
        "shed accounted as no_backend" true
        (metric m "pnrule_router_shed_total{reason=\"no_backend\"}" >= 1.0))

(* ------------------------------------------------------------------ *)
(* Rolling rollout aborts on a warm failure                             *)
(* ------------------------------------------------------------------ *)

(* Shard 1 boots normally (its first registry.load pass is let through)
   but its next load — the rollout's — raises. The fan-out must stop
   there: shard 0 on gen-2, shards 1..2 still serving gen-1, and the
   500 names the stuck shard. *)
let test_rollout_warm_failure () =
  let env_with spec =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv ->
           not
             (String.length kv >= 14 && String.sub kv 0 14 = "PNRULE_FAULTS="))
    |> List.cons ("PNRULE_FAULTS=" ^ spec)
    |> Array.of_list
  in
  let backend_env ~index =
    if index = 1 then Some (env_with "registry.load:raise,after=1") else None
  in
  with_router ~backends:3 ~backend_env (fun t reg ->
      let port = Router.port t in
      let gen2 = R.publish reg (let m, _, _, _ = Lazy.force Test_server.fixture in m) in
      Alcotest.(check int) "candidate generation" 2 gen2;
      let s, _, b =
        Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollout" ()
      in
      Alcotest.(check int) "rollout aborts with 500" 500 s;
      Alcotest.(check bool)
        "error names the stuck shard" true
        (contains b "aborted at backend 1");
      Alcotest.(check bool)
        "error states the fleet coverage" true
        (contains b "backends 0..0 serve the new generation");
      (* Ground truth straight from each shard, bypassing the router. *)
      let shard_gen i =
        let _, _, mb =
          Test_server.one_shot
            (Router.backend_port t i)
            ~meth:"GET" ~path:"/model" ()
        in
        if contains mb "\"generation\": 2" then 2
        else if contains mb "\"generation\": 1" then 1
        else Alcotest.failf "shard %d reports no generation: %s" i mb
      in
      Alcotest.(check (list int))
        "gen-2 stops at the failed shard" [ 2; 1; 1 ]
        (List.map shard_gen [ 0; 1; 2 ]);
      (* The failed shard answered a well-formed 500: it is still
         healthy and still serving its old generation. *)
      Alcotest.(check int) "fleet still 3/3 healthy" 3 (Router.healthy_count t))

let suite =
  [
    Alcotest.test_case "sharded e2e: bytes, merged metrics, rolling rollout"
      `Quick test_sharded_e2e;
    Alcotest.test_case "failover vs proxy-retry accounting reconciles" `Quick
      test_failover_accounting;
    Alcotest.test_case "SIGKILL a shard under load: zero lost requests" `Quick
      test_shard_death_under_load;
    Alcotest.test_case "all shards down: graceful 503 + Retry-After" `Quick
      test_all_backends_down;
    Alcotest.test_case "rolling rollout aborts on warm failure" `Quick
      test_rollout_warm_failure;
  ]
