(* Tests for the PNrule learner, model, and scoring mechanism. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module P = Pnrule.Params
module L = Pnrule.Learner
module M = Pnrule.Model
module C = Pn_metrics.Confusion

(* A separable rare-class problem: target iff x ∈ [40, 42]. *)
let separable ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    if Pn_util.Rng.bernoulli rng 0.02 then begin
      labels.(i) <- 1;
      xs.(i) <- 40.0 +. Pn_util.Rng.float rng 2.0
    end
    else begin
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 39.9 && v <= 42.1 then draw () else v
      in
      xs.(i) <- draw ()
    end
  done;
  D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
    ~classes:[| "neg"; "pos" |] ()

(* The two-phase problem: the target's presence signature (x ∈ [40,42])
   is shared with a decoy class sitting in an *interior* band y ∈ [40,60]
   while the target is uniform on y. Excluding the band inside the
   P-phase would cost ≥ 40 % of the target's support, which [two_params]
   forbids (min_support_fraction = 0.7) — so a precise model must learn
   the decoy's band as an N-rule, exactly the paper's splintered
   false-positive setup. *)
let two_params = { P.default with min_support_fraction = 0.7 }

let two_phase ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.01 then begin
      labels.(i) <- 1;
      xs.(i) <- 40.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
    else if r < 0.05 then begin
      xs.(i) <- 40.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- 40.0 +. Pn_util.Rng.float rng 20.0
    end
    else begin
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 39.9 && v <= 42.1 then draw () else v
      in
      xs.(i) <- draw ();
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
  done;
  D.create
    ~attrs:[| A.numeric "x"; A.numeric "y" |]
    ~columns:[| D.Num xs; D.Num ys |]
    ~labels ~classes:[| "neg"; "pos" |] ()

(* ------------------------------------------------------------------ *)

let test_separable_perfect () =
  let ds = separable ~seed:1 ~n:8000 in
  let model = L.train ds ~target:1 in
  let cm = M.evaluate model ds in
  Alcotest.(check bool) "train F high" true (C.f_measure cm > 0.97);
  let test = separable ~seed:2 ~n:8000 in
  let cm = M.evaluate model test in
  Alcotest.(check bool) "test F high" true (C.f_measure cm > 0.95)

let test_two_phase_needs_n_rules () =
  let ds = two_phase ~seed:3 ~n:20_000 in
  let model, stats = L.train_with_stats ~params:two_params ds ~target:1 in
  let np, nn = M.rule_counts model in
  Alcotest.(check bool) "has P-rules" true (np >= 1);
  Alcotest.(check bool) "has N-rules" true (nn >= 1);
  Alcotest.(check bool) "coverage reached" true (stats.L.p_coverage >= 0.9);
  let cm = M.evaluate model (two_phase ~seed:4 ~n:20_000) in
  Alcotest.(check bool) "test precision recovered" true (C.precision cm > 0.8);
  Alcotest.(check bool) "test recall kept" true (C.recall cm > 0.8)

let test_n_phase_disabled () =
  let ds = two_phase ~seed:3 ~n:20_000 in
  let params = { two_params with enable_n_phase = false } in
  let model = L.train ~params ds ~target:1 in
  let _, nn = M.rule_counts model in
  Alcotest.(check int) "no N-rules" 0 nn

let test_ablation_ordering () =
  (* Full PNrule must beat the no-N-phase variant on the two-phase
     problem (precision collapses without false-positive removal). *)
  let train = two_phase ~seed:5 ~n:20_000 in
  let test = two_phase ~seed:6 ~n:20_000 in
  let f params =
    C.f_measure (M.evaluate (L.train ~params train ~target:1) test)
  in
  let full = f two_params in
  let no_n = f { two_params with enable_n_phase = false } in
  Alcotest.(check bool)
    (Printf.sprintf "full (%.3f) > no-N-phase (%.3f)" full no_n)
    true (full > no_n)

let test_p1_length_respected () =
  let ds = two_phase ~seed:3 ~n:10_000 in
  let params = { two_params with max_p_rule_length = Some 1 } in
  let model = L.train ~params ds ~target:1 in
  List.iter
    (fun r ->
      Alcotest.(check bool) "P-rule length 1" true (Pn_rules.Rule.n_conditions r <= 1))
    (Pn_rules.Rule_list.to_list model.M.p_rules)

let test_score_matrix_shape_and_range () =
  let ds = two_phase ~seed:7 ~n:10_000 in
  let model = L.train ds ~target:1 in
  let np, nn = M.rule_counts model in
  Alcotest.(check int) "rows" np (Array.length model.M.scores);
  Array.iter
    (fun row ->
      Alcotest.(check int) "cols" (nn + 1) (Array.length row);
      Array.iter
        (fun s ->
          if s < 0.0 || s > 1.0 then Alcotest.failf "score out of range: %f" s)
        row)
    model.M.scores

let test_scores_in_unit_interval_on_predictions () =
  let ds = two_phase ~seed:7 ~n:5_000 in
  let model = L.train ds ~target:1 in
  for i = 0 to D.n_records ds - 1 do
    let s = M.score model ds i in
    if s < 0.0 || s > 1.0 then Alcotest.failf "score %f at %d" s i
  done

let test_dnf_mode () =
  let ds = two_phase ~seed:8 ~n:10_000 in
  let params = { P.default with use_scoring = false } in
  let model = L.train ~params ds ~target:1 in
  (* DNF prediction = some P-rule matches and no N-rule matches. *)
  for i = 0 to 500 do
    let expected =
      Pn_rules.Rule_list.any_match ds model.M.p_rules i
      && not (Pn_rules.Rule_list.any_match ds model.M.n_rules i)
    in
    Alcotest.(check bool) "dnf semantics" expected (M.predict model ds i)
  done

let test_no_p_rule_means_negative () =
  let ds = separable ~seed:9 ~n:4000 in
  let model = L.train ds ~target:1 in
  (* A record far outside every P-rule scores 0. *)
  let probe =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num [| 0.5 |] |]
      ~labels:[| 0 |] ~classes:[| "neg"; "pos" |] ()
  in
  Alcotest.(check (float 1e-9)) "score 0" 0.0 (M.score model probe 0);
  Alcotest.(check bool) "predict false" false (M.predict model probe 0)

let test_missing_target_raises () =
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num [| 1.0; 2.0 |] |]
      ~labels:[| 0; 0 |] ~classes:[| "neg"; "pos" |] ()
  in
  try
    ignore (L.train ds ~target:1);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_recall_floor_limits_fn () =
  (* With a high recall floor, the N-phase may not destroy recall on the
     training set. *)
  let ds = two_phase ~seed:10 ~n:20_000 in
  let params = { two_params with recall_floor = 0.95; min_coverage = 0.99 } in
  let model = L.train ~params ds ~target:1 in
  let cm = M.evaluate model ds in
  Alcotest.(check bool)
    (Printf.sprintf "train recall %.3f >= 0.8" (C.recall cm))
    true
    (C.recall cm >= 0.8)

let test_stats_bookkeeping () =
  let ds = two_phase ~seed:11 ~n:10_000 in
  let _, stats = L.train_with_stats ds ~target:1 in
  Alcotest.(check bool) "coverage in [0,1]" true
    (stats.L.p_coverage >= 0.0 && stats.L.p_coverage <= 1.0);
  (* Per-rule positive coverages must sum to total coverage. *)
  let total_target = D.class_weight ds 1 in
  let sum_pos = List.fold_left (fun acc (p, _) -> acc +. p) 0.0 stats.L.p_rule_coverage in
  Alcotest.(check (float 1e-6)) "coverage sums" stats.L.p_coverage
    (sum_pos /. total_target);
  (* DL trace starts at the empty-ruleset DL and never contains NaN. *)
  List.iter
    (fun dl -> if not (Float.is_finite dl) then Alcotest.fail "non-finite DL")
    stats.L.n_dl_trace

let test_metric_variants_train () =
  let ds = two_phase ~seed:12 ~n:8_000 in
  List.iter
    (fun metric ->
      let params = { P.default with metric } in
      let model = L.train ~params ds ~target:1 in
      let np, _ = M.rule_counts model in
      Alcotest.(check bool)
        (Pn_metrics.Rule_metric.kind_name metric ^ " learns rules")
        true (np >= 1))
    [ Pn_metrics.Rule_metric.Z_number; Pn_metrics.Rule_metric.Info_gain;
      Pn_metrics.Rule_metric.Gini; Pn_metrics.Rule_metric.Chi_squared ]

let test_deterministic () =
  let ds = two_phase ~seed:13 ~n:8_000 in
  let m1 = L.train ds ~target:1 and m2 = L.train ds ~target:1 in
  Alcotest.(check bool) "same predictions" true
    (M.predict_all m1 ds = M.predict_all m2 ds)

let qcheck_props =
  [
    QCheck.Test.make ~count:10 ~name:"confusion totals match dataset weight"
      QCheck.(int_range 1 1000)
      (fun seed ->
        let ds = two_phase ~seed ~n:3_000 in
        let model = L.train ds ~target:1 in
        let cm = M.evaluate model ds in
        Float.abs (C.total cm -. D.total_weight ds) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Header resolution against the serving schema                         *)
(* ------------------------------------------------------------------ *)

(* A small trained model whose schema is the two attributes x, y. *)
let header_model = lazy (L.train (separable ~seed:91 ~n:4_000) ~target:1)

let two_attr_model = lazy (L.train (two_phase ~seed:92 ~n:8_000) ~target:1)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_resolve_header_edge_cases () =
  let m = Lazy.force two_attr_model in
  (* Extra columns are fine and must not disturb the mapping: the
     returned indices point at the right header slots regardless of
     order or junk in between. *)
  (match M.resolve_header m [| "junk"; "y"; "class"; "x" |] with
  | Ok map -> Alcotest.(check (array int)) "mapping" [| 3; 1 |] map
  | Error msg -> Alcotest.failf "extra columns rejected: %s" msg);
  (match M.resolve_header m [| "x"; "y" |] with
  | Ok map -> Alcotest.(check (array int)) "identity" [| 0; 1 |] map
  | Error msg -> Alcotest.failf "exact header rejected: %s" msg);
  (* A duplicated attribute name is ambiguous, not first-wins. *)
  (match M.resolve_header m [| "x"; "y"; "x" |] with
  | Ok _ -> Alcotest.fail "duplicate column accepted"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "duplicate named: %s" msg)
      true (contains msg "x"));
  (* Every mismatch is reported at once, "; "-separated. *)
  match M.resolve_header m [| "a"; "b" |] with
  | Ok _ -> Alcotest.fail "alien header accepted"
  | Error msg ->
    Alcotest.(check bool) "mentions x" true (contains msg "x");
    Alcotest.(check bool) "mentions y" true (contains msg "y");
    Alcotest.(check bool) "separator" true (contains msg "; ")

let test_missing_class_column_for_metrics () =
  (* Asking the serving pipeline for metrics against a class column the
     feed does not carry must fail up front, not stream garbage. *)
  let m = Lazy.force header_model in
  let feed = "x\n41.0\n10.0\n" in
  let sink = Buffer.create 64 in
  (try
     ignore
       (Pnrule.Serve.predict_stream ~class_column:"nope" ~model:(Pnrule.Saved.Single m)
          ~source:(Pn_data.Stream.of_string feed)
          ~write:(Buffer.add_string sink) ());
     Alcotest.fail "expected Serve.Error"
   with Pnrule.Serve.Error msg ->
     Alcotest.(check bool)
       (Printf.sprintf "names the column: %s" msg)
       true
       (String.length msg > 0));
  (* Without the explicit request the same feed streams fine. *)
  Buffer.clear sink;
  let report =
    Pnrule.Serve.predict_stream ~model:(Pnrule.Saved.Single m)
      ~source:(Pn_data.Stream.of_string feed)
      ~write:(Buffer.add_string sink) ()
  in
  Alcotest.(check int) "rows out" 2 report.Pnrule.Serve.rows_out;
  Alcotest.(check bool) "no metrics" true (report.Pnrule.Serve.confusion = None)

let suite =
  [
    Alcotest.test_case "separable problem solved" `Quick test_separable_perfect;
    Alcotest.test_case "two-phase problem needs N-rules" `Quick test_two_phase_needs_n_rules;
    Alcotest.test_case "N-phase can be disabled" `Quick test_n_phase_disabled;
    Alcotest.test_case "full beats no-N-phase" `Quick test_ablation_ordering;
    Alcotest.test_case "P1 length cap respected" `Quick test_p1_length_respected;
    Alcotest.test_case "score matrix shape and range" `Quick test_score_matrix_shape_and_range;
    Alcotest.test_case "record scores in [0,1]" `Quick test_scores_in_unit_interval_on_predictions;
    Alcotest.test_case "DNF mode semantics" `Quick test_dnf_mode;
    Alcotest.test_case "no P-rule means negative" `Quick test_no_p_rule_means_negative;
    Alcotest.test_case "missing target raises" `Quick test_missing_target_raises;
    Alcotest.test_case "recall floor protects recall" `Quick test_recall_floor_limits_fn;
    Alcotest.test_case "training stats bookkeeping" `Quick test_stats_bookkeeping;
    Alcotest.test_case "all metrics can train" `Quick test_metric_variants_train;
    Alcotest.test_case "training is deterministic" `Quick test_deterministic;
    Alcotest.test_case "resolve_header edge cases" `Quick test_resolve_header_edge_cases;
    Alcotest.test_case "missing class column for metrics" `Quick
      test_missing_class_column_for_metrics;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
