(* Tests for the induction sub-sampling strategies: parser grammar,
   size/floor guarantees, and the bit-identity contract — any strategy
   at a fixed seed trains the same model at any pool size. *)

module Sa = Pn_induct.Sampling
module D = Pn_data.Dataset
module V = Pn_data.View

(* ------------------------------------------------------------------ *)
(* Parser grammar                                                       *)
(* ------------------------------------------------------------------ *)

let test_parsers_roundtrip () =
  let inst s =
    match Sa.instances_of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "instances %S rejected: %s" s e
  in
  let feat s =
    match Sa.features_of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "features %S rejected: %s" s e
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "instances %s round-trips" (Sa.instances_to_string v))
        true
        (inst (Sa.instances_to_string v) = v))
    [
      Sa.All_instances;
      Sa.Fraction 0.25;
      Sa.Bagging 0.5;
      Sa.Stratified { fraction = 0.1; min_per_class = 50 };
      Sa.Stratified { fraction = 0.33; min_per_class = 7 };
    ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "features %s round-trips" (Sa.features_to_string v))
        true
        (feat (Sa.features_to_string v) = v))
    [ Sa.All_features; Sa.Sqrt_features; Sa.Fraction_features 0.5 ];
  (* The shorthand forms. *)
  Alcotest.(check bool) "bare fraction" true (inst "0.2" = Sa.Fraction 0.2);
  Alcotest.(check bool)
    "strat default floor" true
    (inst "strat:0.1" = Sa.Stratified { fraction = 0.1; min_per_class = 50 });
  List.iter
    (fun s ->
      match Sa.instances_of_string s with
      | Ok _ -> Alcotest.failf "instances %S accepted" s
      | Error _ -> ())
    [ ""; "0"; "0.0"; "1.5"; "-0.1"; "bag:"; "bag:2"; "strat:0.1:-1"; "wat" ];
  List.iter
    (fun s ->
      match Sa.features_of_string s with
      | Ok _ -> Alcotest.failf "features %S accepted" s
      | Error _ -> ())
    [ ""; "0"; "2"; "sqrt:3"; "wat" ]

(* ------------------------------------------------------------------ *)
(* Strategy guarantees                                                  *)
(* ------------------------------------------------------------------ *)

let skewed ~seed ~n =
  Test_serialize.mixed_problem ~seed ~n

let counts_by_class view =
  let ds = view.V.data in
  let counts = Array.make (D.n_classes ds) 0 in
  V.iter view (fun i -> counts.(D.label ds i) <- counts.(D.label ds i) + 1);
  counts

let qcheck_props =
  [
    QCheck.Test.make ~count:100
      ~name:"sampling: stratified never drops a class below its floor"
      QCheck.(triple small_int (float_range 0.01 1.0) (int_range 1 200))
      (fun (seed, fraction, min_per_class) ->
        let ds = skewed ~seed:(seed land 15) ~n:4_000 in
        let spec =
          {
            Sa.instances = Sa.Stratified { fraction; min_per_class };
            features = Sa.All_features;
            seed;
          }
        in
        let view = Sa.sample_instances (Sa.ctx spec) (V.all ds) in
        let full = counts_by_class (V.all ds) in
        let kept = counts_by_class view in
        Array.for_all2
          (fun k n_c -> k >= min n_c min_per_class && k <= n_c)
          kept full);
    QCheck.Test.make ~count:100
      ~name:"sampling: fraction and bagging keep the expected count"
      QCheck.(pair small_int (float_range 0.05 1.0))
      (fun (seed, f) ->
        let ds = skewed ~seed:3 ~n:2_000 in
        let n = D.n_records ds in
        let expected = min n (max 1 (int_of_float (Float.round (f *. float_of_int n)))) in
        let size inst =
          V.size
            (Sa.sample_instances
               (Sa.ctx { Sa.instances = inst; features = Sa.All_features; seed })
               (V.all ds))
        in
        size (Sa.Fraction f) = expected && size (Sa.Bagging f) = expected);
    QCheck.Test.make ~count:100
      ~name:"sampling: kept indices stay ascending (sort-cache contract)"
      QCheck.(pair small_int (float_range 0.05 0.95))
      (fun (seed, f) ->
        let ds = skewed ~seed:5 ~n:2_000 in
        List.for_all
          (fun inst ->
            let view =
              Sa.sample_instances
                (Sa.ctx { Sa.instances = inst; features = Sa.All_features; seed })
                (V.all ds)
            in
            let ok = ref true in
            Array.iteri
              (fun p i -> if p > 0 && i < view.V.idx.(p - 1) then ok := false)
              view.V.idx;
            !ok)
          [
            Sa.Fraction f;
            Sa.Bagging f;
            Sa.Stratified { fraction = f; min_per_class = 10 };
          ]);
    QCheck.Test.make ~count:100
      ~name:"sampling: feature masks are sorted subsets of the right size"
      QCheck.(pair small_int (int_range 2 40))
      (fun (seed, n_attrs) ->
        let check spec expected_k =
          match
            Sa.feature_mask
              (Sa.ctx { Sa.instances = Sa.All_instances; features = spec; seed })
              ~n_attrs
          with
          | None -> expected_k >= n_attrs
          | Some cols ->
            Array.length cols = expected_k
            && expected_k < n_attrs
            && Array.for_all (fun c -> c >= 0 && c < n_attrs) cols
            && Array.for_all
                 (fun p -> p = 0 || cols.(p - 1) < cols.(p))
                 (Array.init (Array.length cols) Fun.id)
        in
        let sqrt_k = int_of_float (Float.ceil (sqrt (float_of_int n_attrs))) in
        check Sa.Sqrt_features sqrt_k
        && check (Sa.Fraction_features 0.5)
             (min n_attrs (max 1 (int_of_float (Float.round (0.5 *. float_of_int n_attrs))))));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                        *)
(* ------------------------------------------------------------------ *)

(* The tentpole contract: a strategy at a fixed seed draws on the
   submitting thread only, so PNRULE_DOMAINS=1 and =4 produce
   byte-identical serialized models — for the sampled single-list
   learner and for the boosted ensemble alike. *)
let test_pool_size_bit_identity () =
  let ds =
    Pn_synth.Numerical.generate (Pn_synth.Numerical.nsyn 3) ~seed:17 ~n:4_000
  in
  let target = Pn_synth.Numerical.target_class in
  let sampling =
    {
      Sa.instances = Sa.Stratified { fraction = 0.5; min_per_class = 20 };
      features = Sa.Sqrt_features;
      seed = 7;
    }
  in
  let pool = Pn_util.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () ->
      Pn_util.Pool.set_default Pn_util.Pool.sequential;
      Pn_util.Pool.shutdown pool)
    (fun () ->
      let run () =
        let single = Pnrule.Learner.train ~sampling ds ~target in
        let boosted = Pnrule.Ensemble.train ~sampling ds ~target in
        ( Pnrule.Serialize.to_string single,
          Pnrule.Serialize.string_of_saved (Pnrule.Saved.Boosted boosted) )
      in
      Pn_util.Pool.set_default Pn_util.Pool.sequential;
      let seq_single, seq_boosted = run () in
      Pn_util.Pool.set_default pool;
      let par_single, par_boosted = run () in
      Alcotest.(check string) "sampled PNrule bytes" seq_single par_single;
      Alcotest.(check string) "boosted ensemble bytes" seq_boosted par_boosted)

(* [Sampling.none] draws nothing, so passing it must be byte-identical
   to not passing a sampling argument at all. *)
let test_none_is_identity () =
  let ds = skewed ~seed:11 ~n:6_000 in
  let plain = Pnrule.Learner.train ds ~target:1 in
  let sampled = Pnrule.Learner.train ~sampling:Sa.none ds ~target:1 in
  Alcotest.(check string) "identical bytes"
    (Pnrule.Serialize.to_string plain)
    (Pnrule.Serialize.to_string sampled)

(* Sampled training must still find the rare classes: the stratified
   floor keeps every target record available to the P-phase. *)
let test_stratified_training_finds_rare_class () =
  let train = skewed ~seed:21 ~n:12_000 in
  let test = skewed ~seed:22 ~n:8_000 in
  let full = Pnrule.Learner.train train ~target:1 in
  let full_recall = Pn_metrics.Confusion.recall (Pnrule.Model.evaluate full test) in
  (* min_per_class 500 exceeds the rare class's ~360 records, so every
     one of them survives while the majority drops to 20% — the model
     sees a rebalanced view and its rare-class recall improves. *)
  let sampling =
    {
      Sa.instances = Sa.Stratified { fraction = 0.2; min_per_class = 500 };
      features = Sa.All_features;
      seed = 5;
    }
  in
  let model = Pnrule.Learner.train ~sampling train ~target:1 in
  let recall = Pn_metrics.Confusion.recall (Pnrule.Model.evaluate model test) in
  Alcotest.(check bool)
    (Printf.sprintf "stratified recall %.3f >= unsampled %.3f" recall full_recall)
    true
    (recall >= full_recall);
  Alcotest.(check bool)
    (Printf.sprintf "stratified recall %.3f > 0.9" recall)
    true (recall > 0.9)

let suite =
  [
    Alcotest.test_case "sampling: parser grammar" `Quick test_parsers_roundtrip;
    Alcotest.test_case "sampling: pool-size bit-identity" `Quick
      test_pool_size_bit_identity;
    Alcotest.test_case "sampling: none is the identity" `Quick
      test_none_is_identity;
    Alcotest.test_case "sampling: stratified training finds the rare class"
      `Quick test_stratified_training_finds_rare_class;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
