(* Tests for the boosted rule ensemble: the compiled bitset scorer
   against a per-record interpretive reference, the Serialize v3
   round-trip (including corruption), and the accuracy claim —
   boosting matches or beats the single PNrule list's recall on the
   skewed synthetic problems. *)

module D = Pn_data.Dataset
module E = Pnrule.Ensemble
module S = Pnrule.Serialize
module Sv = Pnrule.Saved

let skewed ~seed ~n = Test_serialize.mixed_problem ~seed ~n

(* ------------------------------------------------------------------ *)
(* Compiled scoring vs the interpretive reference                       *)
(* ------------------------------------------------------------------ *)

(* What [score_all] must compute, spelled out one record at a time with
   [Rule.matches]. Both walk members in order starting from the bias,
   so the float operations — and hence the bytes — are identical. *)
let reference_scores e ds =
  Array.init (D.n_records ds) (fun i ->
      Array.fold_left
        (fun acc mb ->
          if Pn_rules.Rule.matches ds mb.E.rule i then acc +. mb.E.weight
          else acc)
        e.E.bias e.E.members)

let test_compiled_matches_reference () =
  let train = skewed ~seed:31 ~n:10_000 in
  let test = skewed ~seed:32 ~n:6_000 in
  let e = E.train train ~target:1 in
  Alcotest.(check bool) "ensemble is not degenerate" true (E.n_members e > 0);
  List.iter
    (fun ds ->
      let fast = E.score_all e ds in
      let slow = reference_scores e ds in
      Array.iteri
        (fun i s ->
          if not (Float.equal s slow.(i)) then
            Alcotest.failf "score differs at %d: compiled %h, reference %h" i s
              slow.(i))
        fast;
      let preds = E.predict_all e ds in
      Array.iteri
        (fun i p ->
          if p <> (fast.(i) > e.E.threshold) then
            Alcotest.failf "prediction disagrees with score at %d" i)
        preds)
    [ train; test ]

(* ------------------------------------------------------------------ *)
(* Serialize v3                                                         *)
(* ------------------------------------------------------------------ *)

(* Arbitrary ensembles over the same awkward attribute/float space the
   single-model generator explores: reuse its rules as members and give
   them nan/inf/subnormal weights. *)
let ensemble_gen =
  let open QCheck.Gen in
  Test_serialize.model_gen >>= fun m ->
  let rules =
    Pn_rules.Rule_list.to_list m.Pnrule.Model.p_rules
    @ Pn_rules.Rule_list.to_list m.Pnrule.Model.n_rules
  in
  let weight =
    oneofl [ 0.5; -2.25; 1e-300; 4e-320; Float.infinity; Float.neg_infinity; Float.nan ]
  in
  list_size (return (List.length rules)) weight >>= fun ws ->
  weight >>= fun bias ->
  weight >>= fun threshold ->
  return
    {
      E.target = m.Pnrule.Model.target;
      classes = m.Pnrule.Model.classes;
      attrs = m.Pnrule.Model.attrs;
      members =
        Array.of_list (List.map2 (fun rule weight -> { E.rule; weight }) rules ws);
      bias;
      threshold;
    }

(* Flip one body byte or chop the tail — the v3 reader, like v2, must
   answer every mutation with [Corrupt]. *)
let corruption_gen =
  let open QCheck.Gen in
  ensemble_gen >>= fun e ->
  let s = S.string_of_saved (Sv.Boosted e) in
  let body_start = String.index s '\n' + 1 in
  oneof
    [
      ( int_range body_start (String.length s - 1) >>= fun pos ->
        int_range 1 255 >>= fun delta ->
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
        return (Bytes.to_string b) );
      ( int_range 0 (String.length s - 1) >>= fun keep ->
        return (String.sub s 0 keep) );
    ]

let qcheck_props =
  [
    QCheck.Test.make ~count:300 ~name:"ensemble: v3 round-trip is a fixed point"
      (QCheck.make ensemble_gen)
      (fun e ->
        let s1 = S.string_of_saved (Sv.Boosted e) in
        match S.saved_of_string s1 with
        | Sv.Single _ -> QCheck.Test.fail_report "v3 read back as a single model"
        | Sv.Boosted back ->
          s1 = S.string_of_saved (Sv.Boosted back)
          && back.E.target = e.E.target
          && back.E.classes = e.E.classes
          && back.E.attrs = e.E.attrs
          && E.n_members back = E.n_members e);
    QCheck.Test.make ~count:500
      ~name:"ensemble: corrupted v3 bytes always raise Corrupt"
      (QCheck.make corruption_gen)
      (fun corrupted ->
        match S.saved_of_string corrupted with
        | _ -> QCheck.Test.fail_report "corruption accepted silently"
        | exception S.Corrupt _ -> true
        | exception e ->
          QCheck.Test.fail_reportf "leaked exception %s" (Printexc.to_string e));
  ]

let test_v2_loads_as_single () =
  let ds = skewed ~seed:33 ~n:8_000 in
  let model = Pnrule.Learner.train ds ~target:1 in
  let v2 = S.to_string model in
  match S.saved_of_string v2 with
  | Sv.Boosted _ -> Alcotest.fail "v2 bytes read back as an ensemble"
  | Sv.Single back ->
    Alcotest.(check string) "byte-identical" v2 (S.to_string back);
    Alcotest.(check string) "string_of_saved writes the v2 bytes" v2
      (S.string_of_saved (Sv.Single back))

let test_of_string_rejects_v3 () =
  let ds = skewed ~seed:34 ~n:6_000 in
  let e = E.train ~params:{ E.default_params with rounds = 5 } ds ~target:1 in
  let v3 = S.string_of_saved (Sv.Boosted e) in
  match S.of_string v3 with
  | _ -> Alcotest.fail "of_string accepted a v3 ensemble"
  | exception S.Corrupt _ -> ()

let test_file_roundtrip () =
  let ds = skewed ~seed:35 ~n:8_000 in
  let e = E.train ds ~target:2 in
  let path = Filename.temp_file "pnrule_ensemble" ".pn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save_saved (Sv.Boosted e) path;
      let back = S.load_saved path in
      Alcotest.(check string) "byte-identical after save/load"
        (S.string_of_saved (Sv.Boosted e))
        (S.string_of_saved back);
      Alcotest.(check bool) "same predictions" true
        (Sv.predict_all back ds = E.predict_all e ds))

(* ------------------------------------------------------------------ *)
(* Accuracy on the skewed synthetics                                    *)
(* ------------------------------------------------------------------ *)

let test_boosted_beats_single_list_recall () =
  let spec = Pn_synth.Numerical.nsyn 3 in
  let train = Pn_synth.Numerical.generate spec ~seed:41 ~n:20_000 in
  let test = Pn_synth.Numerical.generate spec ~seed:42 ~n:10_000 in
  let target = Pn_synth.Numerical.target_class in
  let pn = Pnrule.Learner.train train ~target in
  let boosted = E.train train ~target in
  let pn_recall = Pn_metrics.Confusion.recall (Pnrule.Model.evaluate pn test) in
  let b_cm = E.evaluate boosted test in
  let b_recall = Pn_metrics.Confusion.recall b_cm in
  Alcotest.(check bool)
    (Printf.sprintf "boosted recall %.4f >= PNrule recall %.4f" b_recall
       pn_recall)
    true
    (b_recall >= pn_recall);
  Alcotest.(check bool)
    (Printf.sprintf "boosted F %.4f is competitive"
       (Pn_metrics.Confusion.f_measure b_cm))
    true
    (Pn_metrics.Confusion.f_measure b_cm > 0.7)

let suite =
  [
    Alcotest.test_case "ensemble: compiled scorer matches reference" `Quick
      test_compiled_matches_reference;
    Alcotest.test_case "ensemble: v2 bytes load as Single" `Quick
      test_v2_loads_as_single;
    Alcotest.test_case "ensemble: of_string rejects v3" `Quick
      test_of_string_rejects_v3;
    Alcotest.test_case "ensemble: file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "ensemble: boosted recall beats the single list" `Quick
      test_boosted_beats_single_list_recall;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
