(* End-to-end tests for the prediction daemon (lib/server): a real TCP
   client pointed at a server booted on an ephemeral port. Every
   response body is compared against the batch [Serve] pipeline's bytes
   on the same rows — the two paths share one core and must agree
   exactly. *)

module Server = Pn_server.Server

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* A minimal blocking HTTP/1.1 client                                   *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
  }

  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  let send t s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write t.fd b !off (n - !off)
    done

  let refill t =
    let n = Unix.read t.fd t.buf 0 (Bytes.length t.buf) in
    if n = 0 then failwith "client: unexpected EOF";
    t.pos <- 0;
    t.len <- n

  let byte t =
    if t.pos >= t.len then refill t;
    let c = Bytes.get t.buf t.pos in
    t.pos <- t.pos + 1;
    c

  let line t =
    let b = Buffer.create 64 in
    let rec go () =
      match byte t with
      | '\n' -> ()
      | '\r' -> go ()
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b

  let read_n t n =
    let b = Buffer.create n in
    for _ = 1 to n do
      Buffer.add_char b (byte t)
    done;
    Buffer.contents b

  let read_headers t =
    let rec go acc =
      match line t with
      | "" -> List.rev acc
      | l -> (
        match String.index_opt l ':' with
        | None -> go acc
        | Some i ->
          let k = String.lowercase_ascii (String.sub l 0 i) in
          let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
          go ((k, v) :: acc))
    in
    go []

  let read_chunked t =
    let b = Buffer.create 1024 in
    let rec go () =
      let size = int_of_string ("0x" ^ line t) in
      if size = 0 then ignore (line t)
      else begin
        Buffer.add_string b (read_n t size);
        ignore (line t);
        go ()
      end
    in
    go ();
    Buffer.contents b

  (* status, lowercased headers, fully decoded body *)
  let read_response t =
    let status_line = line t in
    let status =
      try Scanf.sscanf status_line "HTTP/1.1 %d" Fun.id
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        Alcotest.failf "bad status line %S" status_line
    in
    let hs = read_headers t in
    let body =
      match List.assoc_opt "transfer-encoding" hs with
      | Some te when String.lowercase_ascii te = "chunked" -> read_chunked t
      | _ -> (
        match List.assoc_opt "content-length" hs with
        | Some n -> read_n t (int_of_string n)
        | None -> "")
    in
    (status, hs, body)

  let request t ~meth ~path ?(headers = []) ?body () =
    let b = Buffer.create 256 in
    Printf.bprintf b "%s %s HTTP/1.1\r\nhost: test\r\n" meth path;
    List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) headers;
    (match body with
    | Some s -> Printf.bprintf b "content-length: %d\r\n" (String.length s)
    | None -> ());
    Buffer.add_string b "\r\n";
    (match body with Some s -> Buffer.add_string b s | None -> ());
    send t (Buffer.contents b);
    read_response t
end

(* One request on a throwaway connection. *)
let one_shot port ~meth ~path ?headers ?body () =
  let c = Client.connect port in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> Client.request c ~meth ~path ?headers ?body ())

let metric_value text name =
  let prefix = name ^ " " in
  let plen = String.length prefix in
  match
    List.find_map
      (fun l ->
        if String.length l > plen && String.sub l 0 plen = prefix then
          Some (String.sub l plen (String.length l - plen))
        else None)
      (String.split_on_char '\n' text)
  with
  | Some v -> float_of_string v
  | None -> Alcotest.failf "metric %s missing from scrape" name

let restore_signals () =
  Sys.set_signal Sys.sighup Sys.Signal_default;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default

(* ------------------------------------------------------------------ *)
(* Shared fixture: one trained model, a CSV feed, and the batch
   pipeline's exact bytes on that feed.                                 *)
(* ------------------------------------------------------------------ *)

let fixture =
  lazy
    (let spec = Pn_synth.Numerical.nsyn 1 in
     let train = Pn_synth.Numerical.generate spec ~seed:71 ~n:10_000 in
     let test = Pn_synth.Numerical.generate spec ~seed:72 ~n:1_237 in
     let model =
       Pnrule.Saved.Single
         (Pnrule.Learner.train train ~target:Pn_synth.Numerical.target_class)
     in
     let csv = Filename.temp_file "pnrule_srv" ".csv" in
     let out = Filename.temp_file "pnrule_srv" ".out" in
     Fun.protect
       ~finally:(fun () ->
         Sys.remove csv;
         Sys.remove out)
       (fun () ->
         Pn_data.Csv_io.save test csv;
         ignore
           (Out_channel.with_open_bin out (fun oc ->
                Pnrule.Serve.predict_csv ~chunk_size:256 ~model ~input:csv
                  ~output:oc ()));
         let body = In_channel.with_open_bin csv In_channel.input_all in
         let expected = In_channel.with_open_bin out In_channel.input_all in
         (model, body, expected, Pn_data.Dataset.n_records test)))

(* The server must score with the same chunk size the batch reference
   used, so the two outputs are comparable chunk for chunk. *)
let boot ?(domains = 1) ?config ~model () =
  let config =
    match config with
    | Some c -> c
    | None -> { Server.default_config with domains; chunk_size = 256 }
  in
  Server.start ~config ~source:(Pn_server.Handler.Loader (fun () -> model)) ()

(* ------------------------------------------------------------------ *)
(* Concurrent keep-alive clients, byte-identical to batch              *)
(* ------------------------------------------------------------------ *)

let run_e2e ~domains () =
  let model, body, expected, rows = Lazy.force fixture in
  let srv = boot ~domains ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let clients = 4 and reqs = 3 in
      (* Each client domain holds one keep-alive connection and reuses it
         for several predict requests. *)
      let results =
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                let c = Client.connect port in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    List.init reqs (fun _ ->
                        Client.request c ~meth:"POST" ~path:"/predict" ~body ()))))
        |> List.map Domain.join
      in
      List.iter
        (List.iter (fun (status, _, got) ->
             Alcotest.(check int) "predict status" 200 status;
             Alcotest.(check string) "byte-identical to batch Serve" expected
               got))
        results;
      (* One more connection interleaving every endpoint, keep-alive. *)
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let s, _, b = Client.request c ~meth:"GET" ~path:"/healthz" () in
          Alcotest.(check int) "healthz" 200 s;
          Alcotest.(check string) "healthz body" "ok\n" b;
          let s, hs, b = Client.request c ~meth:"GET" ~path:"/model" () in
          Alcotest.(check int) "model" 200 s;
          Alcotest.(check bool)
            "model content type json" true
            (match List.assoc_opt "content-type" hs with
            | Some ct -> contains ct "application/json"
            | None -> false);
          Alcotest.(check bool)
            "model json names the target" true
            (contains b "\"target\"");
          Alcotest.(check bool)
            "model json generation" true
            (contains b "\"generation\": 1");
          Alcotest.(check bool)
            "model json load time" true
            (contains b "\"loaded_at\"");
          Alcotest.(check bool)
            "model json uptime" true
            (contains b "\"uptime\"");
          let s, _, got = Client.request c ~meth:"POST" ~path:"/predict" ~body () in
          Alcotest.(check int) "keep-alive predict" 200 s;
          Alcotest.(check string) "keep-alive predict bytes" expected got;
          (* The scrape reconciles with everything this test sent. *)
          let s, _, m = Client.request c ~meth:"GET" ~path:"/metrics" () in
          Alcotest.(check int) "metrics" 200 s;
          let predicts = float_of_int ((clients * reqs) + 1) in
          let total_rows = predicts *. float_of_int rows in
          Alcotest.(check (float 0.0))
            "predict requests" predicts
            (metric_value m "pnrule_requests_total{endpoint=\"predict\"}");
          Alcotest.(check (float 0.0))
            "healthz requests" 1.0
            (metric_value m "pnrule_requests_total{endpoint=\"healthz\"}");
          Alcotest.(check (float 0.0))
            "rows in" total_rows
            (metric_value m "pnrule_rows_in_total");
          Alcotest.(check (float 0.0))
            "rows out" total_rows
            (metric_value m "pnrule_rows_out_total");
          Alcotest.(check (float 0.0))
            "latency observations" predicts
            (metric_value m
               "pnrule_request_seconds_count{endpoint=\"predict\"}");
          (* The scrape itself is the one request in flight. *)
          Alcotest.(check (float 0.0))
            "in flight" 1.0
            (metric_value m "pnrule_in_flight");
          (* The load-time gauge is a live unix timestamp. *)
          Alcotest.(check bool)
            "model load time exported" true
            (metric_value m "pnrule_model_loaded_at_seconds" > 1e9)))

(* ------------------------------------------------------------------ *)
(* Error paths: the worker must survive every one of them              *)
(* ------------------------------------------------------------------ *)

let test_error_paths () =
  let model, _, _, _ = Lazy.force fixture in
  let config =
    {
      Server.default_config with
      domains = 2;
      chunk_size = 64;
      max_body = 2048;
      max_rows = 8;
    }
  in
  let srv = boot ~config ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let attr_names =
        Array.to_list
          (Array.map
             (fun (a : Pn_data.Attribute.t) -> a.name)
             (Pnrule.Saved.attrs model))
      in
      (* Garbage instead of a request line. *)
      let c = Client.connect port in
      Client.send c "NOT-EVEN-HTTP\r\n\r\n";
      let s, _, _ = Client.read_response c in
      Alcotest.(check int) "garbage request" 400 s;
      Client.close c;
      (* Routing errors. *)
      let s, _, _ = one_shot port ~meth:"GET" ~path:"/nope" () in
      Alcotest.(check int) "unknown route" 404 s;
      let s, _, _ = one_shot port ~meth:"GET" ~path:"/predict" () in
      Alcotest.(check int) "GET /predict" 405 s;
      let s, _, _ = one_shot port ~meth:"POST" ~path:"/metrics" ~body:"" () in
      Alcotest.(check int) "POST /metrics" 405 s;
      (* Bad per-request override. *)
      let s, _, _ =
        one_shot port ~meth:"POST" ~path:"/predict?scores=maybe" ~body:"" ()
      in
      Alcotest.(check int) "bad scores flag" 400 s;
      (* Schema mismatch: the 400 body lists every missing attribute. *)
      let s, _, b =
        one_shot port ~meth:"POST" ~path:"/predict" ~body:"a,b\n1,2\n" ()
      in
      Alcotest.(check int) "schema mismatch" 400 s;
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "mismatch message mentions %s" name)
            true (contains b name))
        attr_names;
      (* Oversized body: rejected from the Content-Length alone, before
         any body byte is sent. *)
      let c = Client.connect port in
      Client.send c
        "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: 4096\r\n\r\n";
      let s, _, _ = Client.read_response c in
      Alcotest.(check int) "oversized body" 413 s;
      Client.close c;
      (* Row-count limit (max_rows = 8). *)
      let feed = Buffer.create 256 in
      Buffer.add_string feed (String.concat "," attr_names ^ "\n");
      for _ = 1 to 20 do
        Buffer.add_string feed
          (String.concat "," (List.map (fun _ -> "0") attr_names) ^ "\n")
      done;
      let s, _, _ =
        one_shot port ~meth:"POST" ~path:"/predict?on-error=skip"
          ~body:(Buffer.contents feed) ()
      in
      Alcotest.(check int) "row limit" 413 s;
      (* Mid-request disconnect: head plus a truncated body, then gone. *)
      let c = Client.connect port in
      Client.send c
        "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: 1000\r\n\r\nhalf";
      Client.close c;
      Unix.sleepf 0.2;
      (* Both workers are still alive and serving. *)
      let s, _, b = one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz after errors" 200 s;
      Alcotest.(check string) "healthz body" "ok\n" b;
      let _, _, m = one_shot port ~meth:"GET" ~path:"/metrics" () in
      (* 405 + bad flag + schema + oversize + row limit, all on the
         predict endpoint. *)
      Alcotest.(check (float 0.0))
        "predict errors counted" 5.0
        (metric_value m
           "pnrule_request_errors_total{endpoint=\"predict\"}"))

(* ------------------------------------------------------------------ *)
(* Percent-encoding: every malformed escape is a deterministic 400      *)
(* ------------------------------------------------------------------ *)

let test_bad_percent_encoding () =
  let model, _, _, _ = Lazy.force fixture in
  let srv = boot ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let raw target =
        let c = Client.connect port in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            Client.send c
              (Printf.sprintf "GET %s HTTP/1.1\r\nhost: t\r\n\r\n" target);
            Client.read_response c)
      in
      (* A truncated escape ("%2" at end of input) and a non-hex escape
         ("%zz") take different branches in the decoder; both must fail
         the same way — 400 naming the bad escape — never a silent
         passthrough or a worker-killing exception. *)
      List.iter
        (fun (target, what) ->
          let s, _, b = raw target in
          Alcotest.(check int) (what ^ " is 400") 400 s;
          Alcotest.(check bool)
            (what ^ " names the escape") true
            (contains b "percent-encoding"))
        [
          ("/healthz%2", "truncated escape at end of path");
          ("/%zzmodel", "non-hex escape in path");
          ("/%2", "truncated escape alone");
          ("/predict?scores=%2", "truncated escape in query value");
          ("/predict?on-error=%g1", "half-hex escape in query value");
          ("/predict?%zz=1", "non-hex escape in query key");
        ];
      (* Deterministic: the same bad escape answers identically twice. *)
      let s1, _, b1 = raw "/healthz%2" in
      let s2, _, b2 = raw "/healthz%2" in
      Alcotest.(check int) "same status on repeat" s1 s2;
      Alcotest.(check string) "same body on repeat" b1 b2;
      (* Valid escapes still decode: %2F is '/', so this is /healthz. *)
      let s, _, b = raw "/healthz%2F" in
      Alcotest.(check int) "valid escape decodes" 404 s;
      Alcotest.(check bool) "decoded path in the 404" true (contains b "/healthz/");
      (* The worker survived all of it. *)
      let s, _, b = one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz after bad escapes" 200 s;
      Alcotest.(check string) "healthz body" "ok\n" b)

(* ------------------------------------------------------------------ *)
(* Admission control: saturation sheds 429, never drops admitted work   *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds_overload () =
  let model, body, expected, _ = Lazy.force fixture in
  let config =
    { Server.default_config with chunk_size = 256; queue_limit = 1 }
  in
  let srv = boot ~config ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      (* Client A occupies the only admission slot: head plus half the
         body keeps its request in flight until we finish it. *)
      let a = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close a)
        (fun () ->
          let cut = String.length body / 2 in
          Client.send a
            (Printf.sprintf
               "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: %d\r\n\r\n%s"
               (String.length body) (String.sub body 0 cut));
          (* Wait for the worker to pick the request up (in_flight = 1). *)
          Unix.sleepf 0.3;
          (* Two more clients hit the saturated daemon: both are refused
             at accept speed with a canned 429 + Retry-After, without the
             listener ever reading their requests. *)
          List.iter
            (fun name ->
              let c = Client.connect port in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  let s, hs, b = Client.read_response c in
                  Alcotest.(check int) (name ^ " refused") 429 s;
                  Alcotest.(check (option string))
                    (name ^ " carries retry-after") (Some "1")
                    (List.assoc_opt "retry-after" hs);
                  Alcotest.(check bool)
                    (name ^ " explains itself") true
                    (contains b "capacity")))
            [ "first overflow"; "second overflow" ];
          (* The admitted request was never dropped: finishing the body
             yields the exact batch-pipeline bytes. *)
          Client.send a (String.sub body cut (String.length body - cut));
          let s, _, got = Client.read_response a in
          Alcotest.(check int) "admitted request completes" 200 s;
          Alcotest.(check string) "admitted request byte-identical" expected
            got);
      (* A's connection is closed, freeing the single worker; give the
         in-flight decrement a beat so the next accept is admitted, then
         keep one connection for every post-check — with queue_limit = 1
         a second accept would race its predecessor's decrement. *)
      Unix.sleepf 0.2;
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let s, _, b = Client.request c ~meth:"GET" ~path:"/healthz" () in
          Alcotest.(check int) "healthz after saturation" 200 s;
          Alcotest.(check string) "healthz body" "ok\n" b;
          let _, _, m = Client.request c ~meth:"GET" ~path:"/metrics" () in
          Alcotest.(check (float 0.0))
            "sheds counted by reason" 2.0
            (metric_value m "pnrule_shed_total{reason=\"overload\"}");
          Alcotest.(check (float 0.0))
            "no draining sheds" 0.0
            (metric_value m "pnrule_shed_total{reason=\"draining\"}");
          Alcotest.(check (float 0.0))
            "queue drained" 0.0
            (metric_value m "pnrule_queue_depth");
          Alcotest.(check (float 0.0))
            "limit exported" 1.0
            (metric_value m "pnrule_queue_limit")))

(* ------------------------------------------------------------------ *)
(* Config validation                                                    *)
(* ------------------------------------------------------------------ *)

let test_config_validation () =
  let model, _, _, _ = Lazy.force fixture in
  let boot_with f =
    let config = f Server.default_config in
    Server.start ~config ~source:(Pn_server.Handler.Loader (fun () -> model)) ()
  in
  List.iter
    (fun (name, exn, f) -> Alcotest.check_raises name exn (fun () -> ignore (boot_with f)))
    [
      ( "zero backlog",
        Invalid_argument "Server.start: backlog must be in 1..65535",
        fun c -> { c with Server.backlog = 0 } );
      ( "oversized backlog",
        Invalid_argument "Server.start: backlog must be in 1..65535",
        fun c -> { c with Server.backlog = 65_536 } );
      ( "zero queue limit",
        Invalid_argument "Server.start: queue_limit",
        fun c -> { c with Server.queue_limit = 0 } );
    ]

(* ------------------------------------------------------------------ *)
(* Hot reload                                                           *)
(* ------------------------------------------------------------------ *)

let test_reload_and_generation () =
  let model, body, expected, _ = Lazy.force fixture in
  let fail = ref false in
  let load () = if !fail then failwith "synthetic load failure" else model in
  let config = { Server.default_config with chunk_size = 256 } in
  let srv = Server.start ~config ~source:(Pn_server.Handler.Loader load) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      restore_signals ())
    (fun () ->
      let port = Server.port srv in
      Alcotest.(check int) "initial generation" 1 (Server.generation srv);
      (match Server.reload srv with
      | Ok () -> ()
      | Error m -> Alcotest.failf "reload failed: %s" m);
      Alcotest.(check int) "generation bumped" 2 (Server.generation srv);
      let _, _, j = one_shot port ~meth:"GET" ~path:"/model" () in
      Alcotest.(check bool)
        "/model reports the new generation" true
        (contains j "\"generation\": 2");
      (* A failing load keeps the old model serving. *)
      fail := true;
      (match Server.reload srv with
      | Ok () -> Alcotest.fail "expected reload failure"
      | Error _ -> ());
      Alcotest.(check int) "generation unchanged" 2 (Server.generation srv);
      let s, _, got = one_shot port ~meth:"POST" ~path:"/predict" ~body () in
      Alcotest.(check int) "still serving" 200 s;
      Alcotest.(check string) "old model still answers" expected got;
      (* SIGHUP: the asynchronous path through the listener loop. *)
      fail := false;
      Server.install_signals srv;
      Unix.kill (Unix.getpid ()) Sys.sighup;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Server.generation srv < 3 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.02
      done;
      Alcotest.(check int) "SIGHUP reloaded" 3 (Server.generation srv);
      let _, _, m = one_shot port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check (float 0.0))
        "reloads counted" 2.0
        (metric_value m "pnrule_model_reloads_total");
      Alcotest.(check (float 0.0))
        "failures counted" 1.0
        (metric_value m "pnrule_model_reload_failures_total"))

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                       *)
(* ------------------------------------------------------------------ *)

let test_sigterm_drains_in_flight () =
  let model, body, expected, _ = Lazy.force fixture in
  let srv = boot ~domains:2 ~model () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      restore_signals ())
    (fun () ->
      let port = Server.port srv in
      Server.install_signals srv;
      let mid_request = Atomic.make false in
      let client =
        Domain.spawn (fun () ->
            let c = Client.connect port in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                (* A completed first request guarantees a worker domain
                   owns this connection before the drain begins. *)
                let s, _, _ = Client.request c ~meth:"GET" ~path:"/healthz" () in
                Alcotest.(check int) "pre-drain healthz" 200 s;
                let cut = String.length body / 2 in
                Client.send c
                  (Printf.sprintf
                     "POST /predict HTTP/1.1\r\n\
                      host: t\r\n\
                      content-length: %d\r\n\
                      \r\n\
                      %s"
                     (String.length body)
                     (String.sub body 0 cut));
                Atomic.set mid_request true;
                (* Hold the request open across the SIGTERM. *)
                Unix.sleepf 0.6;
                Client.send c (String.sub body cut (String.length body - cut));
                Client.read_response c))
      in
      while not (Atomic.get mid_request) do
        Unix.sleepf 0.01
      done;
      (* Give the worker a moment to pick the request up, then drain. *)
      Unix.sleepf 0.15;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      let status, _, got = Domain.join client in
      Alcotest.(check int) "in-flight request finished" 200 status;
      Alcotest.(check string) "complete, correct response" expected got;
      Server.join srv;
      (* Fully drained: the listener is gone. *)
      match Client.connect port with
      | c ->
        Client.close c;
        Alcotest.fail "server still accepting after drain"
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ())

(* ------------------------------------------------------------------ *)
(* URL codec: property round-trips and hostile edge cases               *)
(* ------------------------------------------------------------------ *)

module Http = Pn_server.Http

(* The router re-serializes every parsed query string when proxying, so
   decode∘encode must be the identity on arbitrary bytes — not just the
   strings a polite client would send. *)
let url_qcheck_tests =
  let any_string =
    QCheck.make
      ~print:(Printf.sprintf "%S")
      QCheck.Gen.(
        string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 40))
  in
  let query =
    let s =
      QCheck.Gen.(
        string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12))
    in
    QCheck.make
      ~print:(fun q ->
        String.concat "; "
          (List.map (fun (k, v) -> Printf.sprintf "%S=%S" k v) q))
      QCheck.Gen.(list_size (int_bound 8) (pair s s))
  in
  [
    QCheck.Test.make ~count:500 ~name:"url_decode inverts url_encode"
      any_string (fun s -> Http.url_decode (Http.url_encode s) = s);
    QCheck.Test.make ~count:500
      ~name:"url_decode inverts url_encode under plus_space" any_string
      (fun s ->
        Http.url_decode ~plus_space:true (Http.url_encode ~plus_space:true s)
        = s);
    QCheck.Test.make ~count:500 ~name:"parse_query inverts encode_query" query
      (fun q -> Http.parse_query (Http.encode_query q) = q);
    (* Encoding is canonical: no unreserved byte is ever escaped, and
       everything else always is, so an encoded string never needs a
       second encoding pass. *)
    QCheck.Test.make ~count:500 ~name:"url_encode output is canonical"
      any_string (fun s ->
        let e = Http.url_encode s in
        Http.url_encode (Http.url_decode e) = e);
  ]

let test_url_edge_cases () =
  let bad_request f =
    match f () with
    | exception Http.Bad_request _ -> ()
    | s -> Alcotest.failf "expected Bad_request, decoded %S" s
  in
  (* '+' is a literal byte on the path side, a space only under form
     decoding — and %2B is a plus under both. *)
  Alcotest.(check string) "plus is literal" "a+b" (Http.url_decode "a+b");
  Alcotest.(check string) "plus is space under plus_space" "a b"
    (Http.url_decode ~plus_space:true "a+b");
  Alcotest.(check string) "%2B is a plus even under plus_space" "a+b"
    (Http.url_decode ~plus_space:true "a%2Bb");
  Alcotest.(check string) "space encodes as plus under plus_space" "a+b"
    (Http.url_encode ~plus_space:true "a b");
  (* Empty keys and empty values are preserved, not collapsed. *)
  Alcotest.(check (list (pair string string)))
    "empty key" [ ("", "v") ] (Http.parse_query "=v");
  Alcotest.(check (list (pair string string)))
    "empty values and bare keys"
    [ ("a", ""); ("", "b"); ("c", "") ]
    (Http.parse_query "a=&=b&c");
  Alcotest.(check (list (pair string string)))
    "empty pairs are dropped"
    [ ("a", ""); ("b", "") ]
    (Http.parse_query "a&&b");
  Alcotest.(check (list (pair string string)))
    "empty keys survive the proxy round-trip" [ ("", "v"); ("k", "") ]
    (Http.parse_query (Http.encode_query [ ("", "v"); ("k", "") ]));
  (* Double-encoded input decodes exactly one layer per pass. *)
  Alcotest.(check string) "one layer at a time" "%41" (Http.url_decode "%2541");
  Alcotest.(check string) "second pass finishes the job" "A"
    (Http.url_decode (Http.url_decode "%2541"));
  Alcotest.(check (list (pair string string)))
    "double-encoded values survive the proxy round-trip"
    [ ("k", "%2541") ]
    (Http.parse_query (Http.encode_query [ ("k", "%2541") ]));
  (* Malformed escapes fail deterministically, never mangle bytes. *)
  bad_request (fun () -> Http.url_decode "%");
  bad_request (fun () -> Http.url_decode "%2");
  bad_request (fun () -> Http.url_decode "%zz");
  bad_request (fun () -> Http.url_decode "ok%f");
  bad_request (fun () -> Http.url_decode ~plus_space:true "a+%G0")

(* ------------------------------------------------------------------ *)
(* Request-head hardening: bare CR, header budget boundary, malformed
   responses                                                            *)
(* ------------------------------------------------------------------ *)

(* Feed raw bytes to the protocol layer over a socketpair — no server,
   no TCP, fully deterministic. *)
let with_raw_conn raw parse =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let conn = Http.make_conn a in
      let w = Bytes.of_string raw in
      let n = Bytes.length w in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write b w !off (n - !off)
      done;
      Unix.shutdown b Unix.SHUTDOWN_SEND;
      parse conn)

let try_request ?max_header raw =
  with_raw_conn raw (fun conn ->
      match Http.read_request ?max_header conn with
      | req -> Ok req
      | exception Http.Bad_request m -> Error m)

let test_bare_cr_rejected () =
  let expect_bad label raw =
    match try_request raw with
    | Error m ->
      Alcotest.(check bool)
        (label ^ ": names the bare CR") true
        (contains m "bare CR")
    | Ok req ->
      Alcotest.failf "%s: parsed %s %s instead of rejecting" label
        req.Http.meth req.Http.path
  in
  (* CR-only "line endings": some stacks treat a lone CR as a line
     break, which would let a request smuggle a header we never saw.
     Reject the whole head instead. *)
  expect_bad "CR-only separator" "GET / HTTP/1.1\rhost: t\r\n\r\n";
  expect_bad "bare CR inside a header" "GET / HTTP/1.1\r\nh: a\rb\r\n\r\n";
  expect_bad "CR-only blank line" "GET / HTTP/1.1\r\nhost: t\r\n\r\r\n";
  (* CRLF and bare LF both still parse. *)
  (match try_request "GET /ok HTTP/1.1\r\nhost: t\r\n\r\n" with
  | Ok req -> Alcotest.(check string) "CRLF head parses" "/ok" req.Http.path
  | Error m -> Alcotest.failf "CRLF head rejected: %s" m);
  match try_request "GET /ok HTTP/1.1\nhost: t\n\n" with
  | Ok req -> Alcotest.(check string) "bare-LF head parses" "/ok" req.Http.path
  | Error m -> Alcotest.failf "bare-LF head rejected: %s" m

let test_header_budget_boundary () =
  let head = "GET /exact HTTP/1.1\r\nhost: boundary-test\r\n\r\n" in
  let budget = String.length head in
  (* Exactly at the budget: admitted. *)
  (match try_request ~max_header:budget head with
  | Ok req ->
    Alcotest.(check string) "exactly-at-budget head parses" "/exact"
      req.Http.path
  | Error m -> Alcotest.failf "exactly-at-budget head rejected: %s" m);
  (* One byte over (same budget, one more header byte): rejected with
     the deterministic oversize error, not a hang or a mangled parse. *)
  let over = "GET /exact HTTP/1.1\r\nhost: boundary-test!\r\n\r\n" in
  Alcotest.(check int) "over-head is one byte larger" (budget + 1)
    (String.length over);
  match try_request ~max_header:budget over with
  | Error m ->
    Alcotest.(check bool) "oversize error names the budget" true
      (contains m "too large")
  | Ok _ -> Alcotest.fail "one-over-budget head was admitted"

(* The router maps any Bad_request from a shard's response to a
   deterministic 502; this pins down that every malformed shape raises
   Bad_request promptly rather than hanging or leaking garbage. *)
let test_malformed_responses () =
  let try_response raw =
    with_raw_conn raw (fun conn ->
        match Http.read_response conn with
        | r -> Ok r
        | exception Http.Bad_request m -> Error m)
  in
  let expect_bad label raw =
    match try_response raw with
    | Error _ -> ()
    | Ok r -> Alcotest.failf "%s: parsed as HTTP %d" label r.Http.status
  in
  (* Well-formed framings parse. *)
  (match try_response "HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nabc" with
  | Ok r ->
    Alcotest.(check int) "content-length status" 200 r.Http.status;
    Alcotest.(check string) "content-length body" "abc" r.Http.body
  | Error m -> Alcotest.failf "content-length response rejected: %s" m);
  (match
     try_response
       "HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"
   with
  | Ok r -> Alcotest.(check string) "chunked body de-chunked" "abc" r.Http.body
  | Error m -> Alcotest.failf "chunked response rejected: %s" m);
  (match try_response "HTTP/1.1 204 No Content\r\n\r\n" with
  | Ok r -> Alcotest.(check string) "EOF-delimited empty body" "" r.Http.body
  | Error m -> Alcotest.failf "EOF-delimited response rejected: %s" m);
  (* Malformed shapes are deterministic Bad_request. *)
  expect_bad "garbage status line" "garbage\r\n\r\n";
  expect_bad "non-numeric status" "HTTP/1.1 abc OK\r\n\r\n";
  expect_bad "status out of range" "HTTP/1.1 999 Nope\r\n\r\n";
  expect_bad "negative content-length"
    "HTTP/1.1 200 OK\r\ncontent-length: -1\r\n\r\n";
  expect_bad "non-numeric content-length"
    "HTTP/1.1 200 OK\r\ncontent-length: lots\r\n\r\n";
  expect_bad "garbage chunk size"
    "HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\nabc\r\n0\r\n\r\n";
  expect_bad "chunk missing its CRLF terminator"
    "HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n3\r\nabcXY0\r\n\r\n";
  (* Truncation is Disconnect (retryable — the shard died), never a
     silent short body. *)
  match
    with_raw_conn "HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc"
      (fun conn ->
        match Http.read_response conn with
        | r -> Some r
        | exception Http.Disconnect -> None)
  with
  | None -> ()
  | Some r ->
    Alcotest.failf "truncated body parsed as %d-byte response"
      (String.length r.Http.body)

let suite =
  [
    Alcotest.test_case "e2e: 1 worker domain" `Quick (run_e2e ~domains:1);
    Alcotest.test_case "e2e: 4 worker domains" `Quick (run_e2e ~domains:4);
    Alcotest.test_case "error paths leave workers alive" `Quick
      test_error_paths;
    Alcotest.test_case "bad percent-escapes are deterministic 400s" `Quick
      test_bad_percent_encoding;
    Alcotest.test_case "saturation sheds 429 without dropping work" `Quick
      test_admission_sheds_overload;
    Alcotest.test_case "backlog and queue-limit validation" `Quick
      test_config_validation;
    Alcotest.test_case "hot reload and generations" `Quick
      test_reload_and_generation;
    Alcotest.test_case "SIGTERM drains in-flight work" `Quick
      test_sigterm_drains_in_flight;
    Alcotest.test_case "url codec edge cases" `Quick test_url_edge_cases;
    Alcotest.test_case "bare CR in a request head is rejected" `Quick
      test_bare_cr_rejected;
    Alcotest.test_case "header budget boundary is exact" `Quick
      test_header_budget_boundary;
    Alcotest.test_case "malformed responses raise, never hang" `Quick
      test_malformed_responses;
  ]
  @ List.map QCheck_alcotest.to_alcotest url_qcheck_tests
