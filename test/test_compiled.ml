(* Compiled bitset scoring engine vs the per-record reference path.

   The engine must be bit-identical to Rule_list.first_match /
   Model.score / Multiclass.predict on adversarial inputs: ties and
   duplicated values, nan/infinite thresholds, nan data values, empty
   rule lists, rules with zero conditions, records matching no P-rule,
   weighted records — at pool size 1 and 4, with and without a
   pre-built sort cache. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module V = Pn_data.View
module Cond = Pn_rules.Condition
module Rule = Pn_rules.Rule
module RL = Pn_rules.Rule_list
module C = Pn_rules.Compiled
module M = Pnrule.Model
module MC = Pnrule.Multiclass
module Pool = Pn_util.Pool

let pool4 = lazy (Pool.create ~domains:4)

let pools () = [ ("pool1", Pool.sequential); ("pool4", Lazy.force pool4) ]

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let attrs =
  [|
    A.numeric "x";
    A.numeric "y";
    A.categorical "c" [| "a"; "b"; "z" |];
    A.categorical "d" [| "p"; "q" |];
  |]

let classes = [| "neg"; "pos"; "alt" |]

(* Small value pools force ties and duplicates; the tail adds the nasty
   floats (infinities always, nan for data values occasionally). *)
let gen_num_value =
  QCheck.Gen.frequency
    [
      (10, QCheck.Gen.oneofl [ -0.5; 0.0; 0.5; 1.0; 2.0; 2.5; 3.0; 5.0 ]);
      (1, QCheck.Gen.oneofl [ Float.infinity; Float.neg_infinity; Float.nan ]);
    ]

let gen_threshold =
  QCheck.Gen.frequency
    [
      (10, QCheck.Gen.oneofl [ -0.5; 0.0; 0.5; 1.0; 2.0; 2.5; 3.0; 5.0 ]);
      (1, QCheck.Gen.oneofl [ Float.infinity; Float.neg_infinity; Float.nan ]);
    ]

let gen_dataset =
  let open QCheck.Gen in
  let* n = int_range 0 70 in
  let* xs = array_repeat n gen_num_value in
  let* ys = array_repeat n gen_num_value in
  let* cs = array_repeat n (int_range 0 2) in
  let* dsv = array_repeat n (int_range 0 1) in
  let* labels = array_repeat n (int_range 0 2) in
  let* weights = array_repeat n (oneofl [ 0.5; 1.0; 2.0 ]) in
  return
    (D.create ~attrs
       ~columns:[| D.Num xs; D.Num ys; D.Cat cs; D.Cat dsv |]
       ~labels ~classes ~weights ())

let gen_condition =
  let open QCheck.Gen in
  frequency
    [
      ( 2,
        let* col = int_range 2 3 in
        let* value = int_range 0 2 in
        return (Cond.Cat_eq { col; value }) );
      ( 2,
        let* col = int_range 0 1 in
        let* threshold = gen_threshold in
        return (Cond.Num_le { col; threshold }) );
      ( 2,
        let* col = int_range 0 1 in
        let* threshold = gen_threshold in
        return (Cond.Num_ge { col; threshold }) );
      ( 1,
        let* col = int_range 0 1 in
        let* lo = gen_threshold in
        let* hi = gen_threshold in
        (* No swap: inverted (empty) ranges are a case worth keeping. *)
        return (Cond.Num_range { col; lo; hi }) );
    ]

let gen_rule =
  let open QCheck.Gen in
  let* len = int_range 0 3 in
  let* conds = list_repeat len gen_condition in
  return (Rule.of_conditions conds)

let gen_rule_array =
  let open QCheck.Gen in
  let* len = int_range 0 4 in
  let* rules = list_repeat len gen_rule in
  return (Array.of_list rules)

(* A dataset, a flag forcing the sort cache (rank path) first, and a
   batch of rule lists. *)
let gen_scenario =
  let open QCheck.Gen in
  let* ds = gen_dataset in
  let* build_cache = bool in
  let* n_rule_lists = int_range 0 3 in
  let* lists = list_repeat n_rule_lists gen_rule_array in
  return (ds, build_cache, Array.of_list lists)

let force_cache ds =
  if D.n_records ds > 0 then begin
    ignore (D.sorted_order ds ~col:0);
    ignore (D.sorted_order ds ~col:1)
  end

let scenario_arb =
  QCheck.make
    ~print:(fun (ds, cache, lists) ->
      Printf.sprintf "n=%d cache=%b lists=%s" (D.n_records ds) cache
        (String.concat " | "
           (Array.to_list
              (Array.map
                 (fun rules ->
                   String.concat " ; "
                     (Array.to_list (Array.map (Rule.to_string attrs) rules)))
                 lists))))
    gen_scenario

(* ------------------------------------------------------------------ *)
(* first_match / covered equivalence                                    *)
(* ------------------------------------------------------------------ *)

let reference_first_match ds rules i =
  match RL.first_match ds (RL.of_array rules) i with None -> -1 | Some k -> k

let prop_first_match (ds, build_cache, lists) =
  if build_cache then force_cache ds;
  let prog = C.compile lists in
  List.for_all
    (fun (_pname, pool) ->
      let fm = C.eval ~pool prog ds in
      Array.for_all2
        (fun rules got ->
          Array.length got = D.n_records ds
          && Array.for_all
               (fun i -> got.(i) = reference_first_match ds rules i)
               (Array.init (D.n_records ds) Fun.id))
        lists fm)
    (pools ())

let prop_covered (ds, build_cache, lists) =
  if build_cache then force_cache ds;
  Array.for_all
    (fun rules ->
      let rl = RL.of_array rules in
      let expect =
        Array.of_list
          (List.filter
             (fun i -> RL.any_match ds rl i)
             (List.init (D.n_records ds) Fun.id))
      in
      (RL.covered ds rl).V.idx = expect)
    lists

(* ------------------------------------------------------------------ *)
(* Model batch path equivalence                                         *)
(* ------------------------------------------------------------------ *)

let gen_model_scenario =
  let open QCheck.Gen in
  let* ds = gen_dataset in
  let* build_cache = bool in
  let* p_rules = gen_rule_array in
  let* n_rules = gen_rule_array in
  let* use_scoring = bool in
  let* scores =
    array_repeat (Array.length p_rules)
      (array_repeat (Array.length n_rules + 1) (oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ]))
  in
  return (ds, build_cache, p_rules, n_rules, use_scoring, scores)

let model_arb =
  QCheck.make
    ~print:(fun (ds, cache, p, n, sc, _) ->
      Printf.sprintf "n=%d cache=%b scoring=%b P=%d N=%d" (D.n_records ds) cache sc
        (Array.length p) (Array.length n))
    gen_model_scenario

let make_model p_rules n_rules use_scoring scores =
  {
    M.target = 1;
    classes;
    attrs;
    p_rules = RL.of_array p_rules;
    n_rules = RL.of_array n_rules;
    scores;
    params = { Pnrule.Params.default with use_scoring };
  }

let prop_model (ds, build_cache, p_rules, n_rules, use_scoring, scores) =
  if build_cache then force_cache ds;
  let model = make_model p_rules n_rules use_scoring scores in
  let n = D.n_records ds in
  let ref_scores = Array.init n (M.score model ds) in
  let ref_predict = Array.init n (M.predict model ds) in
  let ref_confusion =
    let acc = ref Pn_metrics.Confusion.zero in
    for i = 0 to n - 1 do
      acc :=
        Pn_metrics.Confusion.add !acc
          ~actual:(D.label ds i = 1)
          ~predicted:ref_predict.(i) ~weight:(D.weight ds i)
    done;
    !acc
  in
  List.for_all
    (fun (_pname, pool) ->
      M.score_all ~pool model ds = ref_scores
      && M.predict_all ~pool model ds = ref_predict
      && M.evaluate ~pool model ds = ref_confusion)
    (pools ())

(* ------------------------------------------------------------------ *)
(* Multiclass batch path equivalence                                    *)
(* ------------------------------------------------------------------ *)

let gen_multiclass_scenario =
  let open QCheck.Gen in
  let* ds = gen_dataset in
  let* build_cache = bool in
  let* specs =
    list_repeat 2
      (let* p = gen_rule_array in
       let* n = gen_rule_array in
       let* scores =
         array_repeat (Array.length p)
           (array_repeat (Array.length n + 1) (oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ]))
       in
       return (p, n, scores))
  in
  return (ds, build_cache, specs)

let multiclass_arb =
  QCheck.make
    ~print:(fun (ds, cache, _) ->
      Printf.sprintf "n=%d cache=%b" (D.n_records ds) cache)
    gen_multiclass_scenario

let prop_multiclass (ds, build_cache, specs) =
  if build_cache then force_cache ds;
  let models =
    List.mapi
      (fun k (p, n, scores) ->
        (* Classes 1 and 2 get models (rarest-first order is up to the
           constructor, which we bypass); 0 is the fallback. *)
        (k + 1, make_model p n true scores))
      specs
  in
  let mc = { MC.models = Array.of_list models; fallback = 0; classes } in
  let n = D.n_records ds in
  let ref_predict = Array.init n (MC.predict mc ds) in
  List.for_all
    (fun (_pname, pool) -> MC.predict_all ~pool mc ds = ref_predict)
    (pools ())

(* ------------------------------------------------------------------ *)
(* Deterministic edge cases                                             *)
(* ------------------------------------------------------------------ *)

let test_edge_cases () =
  (* Empty dataset. *)
  let empty =
    D.create ~attrs
      ~columns:[| D.Num [||]; D.Num [||]; D.Cat [||]; D.Cat [||] |]
      ~labels:[||] ~classes ()
  in
  let rules = [| Rule.empty |] in
  Alcotest.(check (array int)) "empty dataset" [||] (C.first_match_all rules empty);
  (* Empty rule matches everything at position 0. *)
  let ds =
    D.create ~attrs
      ~columns:[| D.Num [| 1.0; 2.0 |]; D.Num [| 0.0; 0.0 |]; D.Cat [| 0; 1 |]; D.Cat [| 0; 0 |] |]
      ~labels:[| 0; 1 |] ~classes ()
  in
  Alcotest.(check (array int)) "empty rule wins" [| 0; 0 |] (C.first_match_all rules ds);
  (* No rules: nothing matches. *)
  Alcotest.(check (array int)) "no rules" [| -1; -1 |] (C.first_match_all [||] ds);
  (* Program over zero lists. *)
  Alcotest.(check int) "no lists" 0 (Array.length (C.eval (C.compile [||]) ds));
  (* Dedup folds the repeated condition across lists. *)
  let c = Cond.Num_le { col = 0; threshold = 1.5 } in
  let prog =
    C.compile
      [|
        [| Rule.of_conditions [ c ] |];
        [| Rule.of_conditions [ c; c ]; Rule.of_conditions [ c ] |];
      |]
  in
  Alcotest.(check int) "dedup" 1 (C.n_distinct_conditions prog);
  Alcotest.(check int) "lists" 2 (C.n_lists prog);
  let fm = C.eval prog ds in
  Alcotest.(check (array int)) "list 0" [| 0; -1 |] fm.(0);
  Alcotest.(check (array int)) "list 1" [| 0; -1 |] fm.(1);
  (* Kind mismatch raises like the reference accessors. *)
  Alcotest.check_raises "cat condition on num column"
    (Invalid_argument "Compiled.eval: categorical condition on numeric column")
    (fun () ->
      ignore (C.first_match_all [| Rule.of_conditions [ Cond.Cat_eq { col = 0; value = 0 } ] |] ds))

(* A dataset larger than one evaluation chunk exercises the chunk
   boundaries and the parallel fan-out. *)
let test_multi_chunk () =
  let n = 9000 in
  let xs = Array.init n (fun i -> float_of_int (i mod 17)) in
  let ys = Array.init n (fun i -> float_of_int ((i * 7) mod 23)) in
  let cs = Array.init n (fun i -> i mod 3) in
  let dsv = Array.init n (fun i -> (i / 2) mod 2) in
  let labels = Array.init n (fun i -> i mod 3) in
  let ds =
    D.create ~attrs
      ~columns:[| D.Num xs; D.Num ys; D.Cat cs; D.Cat dsv |]
      ~labels ~classes ()
  in
  let rules =
    [|
      Rule.of_conditions
        [ Cond.Num_le { col = 0; threshold = 8.0 }; Cond.Cat_eq { col = 2; value = 1 } ];
      Rule.of_conditions [ Cond.Num_range { col = 1; lo = 3.0; hi = 11.0 } ];
    |]
  in
  let rl = RL.of_array rules in
  let expect =
    Array.init n (fun i ->
        match RL.first_match ds rl i with None -> -1 | Some k -> k)
  in
  List.iter
    (fun (pname, pool) ->
      Alcotest.(check (array int))
        (pname ^ " matches reference") expect
        (C.eval ~pool (C.compile [| rules |]) ds).(0))
    (pools ())

let qcheck_props =
  [
    QCheck.Test.make ~count:300 ~name:"compiled first_match == reference"
      scenario_arb prop_first_match;
    QCheck.Test.make ~count:300 ~name:"covered == reference filter" scenario_arb
      prop_covered;
    QCheck.Test.make ~count:300 ~name:"model batch == per-record reference"
      model_arb prop_model;
    QCheck.Test.make ~count:200 ~name:"multiclass batch == per-record reference"
      multiclass_arb prop_multiclass;
  ]

let suite =
  [
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "multi-chunk parallel eval" `Quick test_multi_chunk;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
