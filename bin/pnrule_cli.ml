(* Command-line interface to the PNrule library.

   Subcommands:
     train     train a classifier on a CSV file and print the model
     eval      train on one CSV, evaluate on another, print metrics
     predict   score a CSV or .pnc columnar file with a saved model
     ingest    convert a CSV/ARFF dataset to the binary columnar format
     serve     run the online HTTP prediction daemon
     gen       write one of the paper's synthetic datasets to CSV
     inspect   print a dataset summary *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Validated argument converters                                        *)
(* ------------------------------------------------------------------ *)

(* Range-checked ints so an out-of-range value is a cmdliner usage
   error at parse time, not a runtime exception mid-pipeline. *)
let ranged_int ~what ~lo ~hi =
  Arg.conv'
    ( (fun s ->
        match int_of_string_opt s with
        | Some v when v >= lo && v <= hi -> Ok v
        | Some v ->
          Error (Printf.sprintf "%s must be in %d..%d, got %d" what lo hi v)
        | None -> Error (Printf.sprintf "%s must be an integer, got %S" what s)),
      Format.pp_print_int )

(* Same, for seconds-valued knobs (timeouts, deadlines). *)
let ranged_float ~what ~lo ~hi =
  Arg.conv'
    ( (fun s ->
        match float_of_string_opt s with
        | Some v when v >= lo && v <= hi -> Ok v
        | Some v ->
          Error (Printf.sprintf "%s must be in %g..%g, got %g" what lo hi v)
        | None -> Error (Printf.sprintf "%s must be a number, got %S" what s)),
      fun ppf v -> Format.fprintf ppf "%g" v )

let chunk_conv = ranged_int ~what:"chunk size" ~lo:1 ~hi:16_777_216

let port_conv = ranged_int ~what:"port" ~lo:0 ~hi:65535

let domains_conv = ranged_int ~what:"domains" ~lo:1 ~hi:64

let chunk_arg =
  Arg.(
    value & opt chunk_conv 8192
    & info [ "chunk" ] ~docv:"ROWS"
        ~doc:"Rows decoded and scored per batch; bounds resident memory.")

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let target_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "target" ] ~docv:"CLASS" ~doc:"Name of the target class.")

let class_column_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "class-column" ] ~docv:"NAME"
        ~doc:"CSV column holding the class label (default: last column).")

let policy_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("strict", Pn_data.Ingest_report.Strict);
             ("skip", Pn_data.Ingest_report.Skip);
             ("impute", Pn_data.Ingest_report.Impute) ])
        Pn_data.Ingest_report.Strict
    & info [ "on-error" ] ~docv:"POLICY"
        ~doc:
          "What to do with rows that fail to decode: $(b,strict) aborts \
           (default), $(b,skip) drops and counts them, $(b,impute) fills \
           missing values with the column median/majority and drops only \
           structurally bad rows.")

(* Dispatch on file extension: .arff loads as ARFF, .pnc as binary
   columnar (no text parsing at all), anything else as CSV. Under
   skip/impute the ingest accounting goes to stderr. *)
let load_dataset ?class_column ?(policy = Pn_data.Ingest_report.Strict) path =
  let lower = String.lowercase_ascii path in
  try
    let ds, report =
      if Filename.check_suffix lower ".pnc" then begin
        if class_column <> None then begin
          Printf.eprintf
            "error: --class-column does not apply to columnar input (labels \
             are in the file)\n";
          exit 1
        end;
        Pn_data.Columnar.load_with_report ~policy path
      end
      else if Filename.check_suffix lower ".arff" then
        Pn_data.Arff_io.load_with_report ?class_attribute:class_column ~policy
          path
      else Pn_data.Csv_io.load_with_report ?class_column ~policy path
    in
    if policy <> Pn_data.Ingest_report.Strict then
      Format.eprintf "%s: %a@." path Pn_data.Ingest_report.pp report;
    ds
  with
  | Pn_data.Csv_io.Parse_error msg | Pn_data.Arff_io.Parse_error msg ->
    Printf.eprintf "error: cannot parse %s: %s\n" path msg;
    exit 1
  | Pn_data.Columnar.Corrupt msg ->
    Printf.eprintf "error: cannot read %s: %s\n" path msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let resolve_target ds name =
  match Pn_data.Dataset.class_index ds name with
  | i -> i
  | exception Not_found ->
    Printf.eprintf "error: class %S not found; classes are: %s\n" name
      (String.concat ", " (Array.to_list ds.Pn_data.Dataset.classes));
    exit 1

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print learner progress.")

(* ------------------------------------------------------------------ *)
(* Method construction                                                  *)
(* ------------------------------------------------------------------ *)

let method_arg =
  Arg.(
    value
    & opt (enum [ ("pnrule", `Pnrule); ("boosted", `Boosted); ("ripper", `Ripper); ("c45rules", `C45rules); ("c45tree", `C45tree) ]) `Pnrule
    & info [ "method" ] ~docv:"METHOD"
        ~doc:"Classifier: $(b,pnrule), $(b,boosted), $(b,ripper), $(b,c45rules) or $(b,c45tree).")

let stratified_arg =
  Arg.(
    value & flag
    & info [ "stratified" ]
        ~doc:"Train on the stratified (\"-we\") re-weighted training set.")

let rp_arg =
  Arg.(
    value & opt float 0.95
    & info [ "rp" ] ~docv:"FRAC" ~doc:"PNrule: minimum target coverage of the P-phase.")

let rn_arg =
  Arg.(
    value & opt float 0.7
    & info [ "rn" ] ~docv:"FRAC" ~doc:"PNrule: recall floor guiding N-rule refinement.")

let p1_arg =
  Arg.(value & flag & info [ "p1" ] ~doc:"PNrule: restrict P-rules to one condition.")

let metric_arg =
  Arg.(
    value
    & opt (enum [ ("z-number", Pn_metrics.Rule_metric.Z_number); ("info-gain", Pn_metrics.Rule_metric.Info_gain); ("gini", Pn_metrics.Rule_metric.Gini); ("chi-squared", Pn_metrics.Rule_metric.Chi_squared) ]) Pn_metrics.Rule_metric.Z_number
    & info [ "metric" ] ~docv:"METRIC" ~doc:"PNrule rule-evaluation metric.")

let pnrule_params rp rn p1 metric =
  {
    Pnrule.Params.default with
    min_coverage = rp;
    recall_floor = rn;
    max_p_rule_length = (if p1 then Some 1 else None);
    metric;
  }

let spec_of_method meth stratified params =
  match meth with
  | `Pnrule -> Pn_harness.Methods.pnrule ~params ()
  | `Boosted ->
    Pn_harness.Methods.boosted
      ~params:
        {
          Pnrule.Ensemble.default_params with
          metric = params.Pnrule.Params.metric;
        }
      ()
  | `Ripper -> Pn_harness.Methods.ripper ~stratified ()
  | `C45rules -> Pn_harness.Methods.c45rules ~stratified ()
  | `C45tree -> Pn_harness.Methods.c45tree ~stratified ()

(* ------------------------------------------------------------------ *)
(* Sampling arguments (train)                                           *)
(* ------------------------------------------------------------------ *)

let instance_sample_conv =
  Arg.conv'
    ( Pn_induct.Sampling.instances_of_string,
      fun ppf v ->
        Format.pp_print_string ppf (Pn_induct.Sampling.instances_to_string v) )

let feature_sample_conv =
  Arg.conv'
    ( Pn_induct.Sampling.features_of_string,
      fun ppf v ->
        Format.pp_print_string ppf (Pn_induct.Sampling.features_to_string v) )

let instance_sample_arg =
  Arg.(
    value
    & opt instance_sample_conv Pn_induct.Sampling.All_instances
    & info [ "instance-sample" ] ~docv:"STRATEGY"
        ~doc:
          "Instance sub-sampling: $(b,none) (default), a fraction in (0,1] \
           (without replacement), $(b,bag:)$(i,FRAC) (with replacement), or \
           $(b,strat:)$(i,FRAC)[$(b,:)$(i,MIN)] (per-class, never fewer than \
           $(i,MIN) records of any class — the rare class is never starved).")

let feature_sample_arg =
  Arg.(
    value
    & opt feature_sample_conv Pn_induct.Sampling.All_features
    & info [ "feature-sample" ] ~docv:"STRATEGY"
        ~doc:
          "Per-rule feature sub-sampling: $(b,none) (default), $(b,sqrt) \
           (⌈√n⌉ attributes), or a fraction in (0,1].")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the sampling streams; a given strategy at a given seed \
           draws the same records and columns at any $(b,PNRULE_DOMAINS).")

(* ------------------------------------------------------------------ *)
(* train                                                                *)
(* ------------------------------------------------------------------ *)

let train_cmd =
  let run verbose data class_column policy target meth rounds shrinkage
      instances features seed rp rn p1 metric out =
    setup_logs verbose;
    let ds = load_dataset ?class_column ~policy data in
    let target = resolve_target ds target in
    let sampling = { Pn_induct.Sampling.instances; features; seed } in
    match meth with
    | `Pnrule ->
      let params = pnrule_params rp rn p1 metric in
      let model, stats =
        Pnrule.Learner.train_with_stats ~params ~sampling ds ~target
      in
      Format.printf "%a@." Pnrule.Model.pp model;
      Format.printf "P-phase coverage: %.3f@." stats.Pnrule.Learner.p_coverage;
      Format.printf "training-set performance: %a@." Pn_metrics.Confusion.pp
        stats.Pnrule.Learner.train_confusion;
      (match out with
      | Some path ->
        let sm = Pnrule.Saved.Single model in
        let exp = Pn_adapt.Expectations.derive sm ds in
        Pnrule.Serialize.save_saved_ex sm (Some exp) path;
        Printf.printf "model written to %s (with drift expectations)\n" path
      | None -> ())
    | `Boosted -> (
      let params =
        { Pnrule.Ensemble.default_params with rounds; shrinkage; metric }
      in
      let ensemble = Pnrule.Ensemble.train ~params ~sampling ds ~target in
      Format.printf "%a@." Pnrule.Ensemble.pp ensemble;
      Format.printf "training-set performance: %a@." Pn_metrics.Confusion.pp
        (Pnrule.Ensemble.evaluate ensemble ds);
      match out with
      | Some path ->
        let sm = Pnrule.Saved.Boosted ensemble in
        let exp = Pn_adapt.Expectations.derive sm ds in
        Pnrule.Serialize.save_saved_ex sm (Some exp) path;
        Printf.printf "model written to %s (with drift expectations)\n" path
      | None -> ())
  in
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let meth =
    Arg.(
      value
      & opt (enum [ ("pnrule", `Pnrule); ("boosted", `Boosted) ]) `Pnrule
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            "Learner: $(b,pnrule) (the two-phase rule list, default) or \
             $(b,boosted) (a confidence-rated boosted rule ensemble).")
  in
  let rounds =
    Arg.(
      value
      & opt (ranged_int ~what:"rounds" ~lo:1 ~hi:10_000) 30
      & info [ "rounds" ] ~docv:"N" ~doc:"Boosted: boosting rounds.")
  in
  let shrinkage =
    Arg.(
      value
      & opt (ranged_float ~what:"shrinkage" ~lo:1e-6 ~hi:1.0) 0.5
      & info [ "shrinkage" ] ~docv:"FRAC"
          ~doc:"Boosted: confidence multiplier in (0,1].")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Save the trained model to this file.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train a model on a CSV, ARFF or binary columnar ($(b,.pnc)) dataset \
          and print it.")
    Term.(
      const run $ verbose_arg $ data $ class_column_arg $ policy_arg
      $ target_arg $ meth $ rounds $ shrinkage $ instance_sample_arg
      $ feature_sample_arg $ seed_arg $ rp_arg $ rn_arg $ p1_arg $ metric_arg
      $ out)

(* ------------------------------------------------------------------ *)
(* predict                                                              *)
(* ------------------------------------------------------------------ *)

let predict_cmd =
  let run model_file data class_column scores policy chunk out format =
    let model =
      try Pnrule.Serialize.load_saved model_file with
      | Pnrule.Serialize.Corrupt msg ->
        Printf.eprintf "error: cannot read model %s: %s\n" model_file msg;
        exit 1
      | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let columnar =
      match format with
      | `Auto -> Filename.check_suffix (String.lowercase_ascii data) ".pnc"
      | `Csv -> false
      | `Pnc -> true
    in
    if columnar && class_column <> None then begin
      Printf.eprintf
        "error: --class-column does not apply to columnar input (labels are in \
         the file)\n";
      exit 1
    end;
    let predict output =
      if columnar then
        Pnrule.Serve.predict_pnc ~policy ~scores ~model ~input:data ~output ()
      else
        Pnrule.Serve.predict_csv ~policy ~chunk_size:chunk ?class_column ~scores
          ~model ~input:data ~output ()
    in
    let report =
      try
        match out with
        | None -> predict stdout
        | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> predict oc)
      with
      | Pnrule.Serve.Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
      | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    Format.eprintf "%s: %a@." data Pn_data.Ingest_report.pp report.Pnrule.Serve.ingest;
    Printf.eprintf "%d predictions in %d chunk%s, %.2fs (%.0f rows/s)\n"
      report.Pnrule.Serve.rows_out report.Pnrule.Serve.chunks
      (if report.Pnrule.Serve.chunks = 1 then "" else "s")
      report.Pnrule.Serve.seconds
      (if report.Pnrule.Serve.seconds > 0.0 then
         float_of_int report.Pnrule.Serve.rows_out /. report.Pnrule.Serve.seconds
       else 0.0);
    if report.Pnrule.Serve.unknown_labels > 0 then
      Printf.eprintf "%d rows had labels outside the model's class table\n"
        report.Pnrule.Serve.unknown_labels;
    match report.Pnrule.Serve.confusion with
    | Some cm ->
      Printf.eprintf "recall=%.4f precision=%.4f F=%.4f\n"
        (Pn_metrics.Confusion.recall cm)
        (Pn_metrics.Confusion.precision cm)
        (Pn_metrics.Confusion.f_measure cm)
    | None -> ()
  in
  let model_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.pn")
  in
  let data =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DATA.csv")
  in
  let scores =
    Arg.(
      value & flag
      & info [ "scores" ]
          ~doc:"Add a $(b,score) column with the probability-like score.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write predictions to this file instead of stdout.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("csv", `Csv); ("pnc", `Pnc) ]) `Auto
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Input format: $(b,csv), $(b,pnc) (binary columnar), or \
             $(b,auto) (default: by file extension). Columnar input is \
             scored one row group at a time, so $(b,--chunk) does not \
             apply.")
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Stream a CSV or binary columnar ($(b,.pnc)) file through a saved \
          model in fixed-size chunks, writing a predictions CSV (ingest \
          accounting and metrics on stderr). The input is validated against \
          the model's schema by column name, so column order may differ and \
          extra columns are ignored. Both formats produce byte-identical \
          predictions on the same rows; the columnar path skips text parsing \
          entirely.")
    Term.(
      const run $ model_file $ data $ class_column_arg $ scores $ policy_arg
      $ chunk_arg $ out $ format)

(* ------------------------------------------------------------------ *)
(* ingest                                                               *)
(* ------------------------------------------------------------------ *)

let ingest_cmd =
  let run data class_column policy group_size out =
    let ds = load_dataset ?class_column ~policy data in
    match Pn_data.Columnar.save ~group_size ds out with
    | () ->
      let n = Pn_data.Dataset.n_records ds in
      let groups = if n = 0 then 0 else ((n - 1) / group_size) + 1 in
      Printf.printf "wrote %d records in %d group%s of up to %d rows to %s\n" n
        groups
        (if groups = 1 then "" else "s")
        group_size out
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "error: cannot write %s: %s (%s)\n" out
        (Unix.error_message err) fn;
      exit 1
  in
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let group_size =
    Arg.(
      value
      & opt
          (ranged_int ~what:"group size" ~lo:1 ~hi:16_777_216)
          Pn_data.Columnar.default_group_size
      & info [ "group-size" ] ~docv:"ROWS"
          ~doc:
            "Rows per row group; readers decode and score one group at a \
             time, so this bounds serving memory like $(b,--chunk) does for \
             CSV.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE.pnc"
          ~doc:"Columnar file to write (atomically: temp file + rename).")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Convert a CSV or ARFF dataset to the binary columnar format \
          ($(b,.pnc)): typed per-column blocks in fixed-size row groups, \
          dictionary-encoded categoricals, per-block CRC-32 checksums. \
          $(b,predict) and $(b,POST /predict) consume it with no per-cell \
          text parsing, which makes scoring large feeds several times \
          faster end to end.")
    Term.(
      const run $ data $ class_column_arg $ policy_arg $ group_size $ out)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run verbose model_file registry host port domains policy chunk max_body_mb
      max_rows idle deadline backlog queue_limit adapt window drift_threshold
      reservoir =
    setup_logs verbose;
    let source =
      match (model_file, registry) with
      | Some m, None ->
        Pn_server.Handler.Loader (fun () -> Pnrule.Serialize.load_saved m)
      | None, Some dir ->
        Pn_server.Handler.Registry (Pnrule.Registry.open_dir dir)
      | Some _, Some _ ->
        Printf.eprintf "error: --model and --registry are mutually exclusive\n";
        exit 1
      | None, None ->
        Printf.eprintf "error: one of --model or --registry is required\n";
        exit 1
    in
    let adapt_cfg =
      if not adapt then None
      else if registry = None then begin
        Printf.eprintf "error: --adapt requires --registry\n";
        exit 1
      end
      else
        Some
          {
            Pn_adapt.Retrainer.default_config with
            drift =
              {
                Pn_adapt.Drift.default_config with
                window;
                threshold = drift_threshold;
              };
            reservoir;
          }
    in
    let config =
      {
        Pn_server.Server.host;
        port;
        domains;
        policy;
        chunk_size = chunk;
        max_body = max_body_mb * 1024 * 1024;
        max_rows;
        idle_timeout = idle;
        deadline;
        backlog;
        queue_limit;
        adapt = adapt_cfg;
      }
    in
    match Pn_server.Server.start ~config ~source () with
    | server ->
      Pn_server.Server.install_signals server;
      Printf.printf
        "pnrule daemon listening on http://%s:%d/ (%d worker domain%s, \
         generation %d)\n\
         endpoints: POST /predict, GET /healthz, GET /model, GET /metrics%s\n\
         SIGHUP reloads the model, SIGTERM/SIGINT drains and exits\n\
         %!"
        host
        (Pn_server.Server.port server)
        domains
        (if domains = 1 then "" else "s")
        (Pn_server.Server.generation server)
        ((if registry <> None then
            ",\n           POST /admin/rollout, POST /admin/rollback"
          else "")
        ^
        if adapt then ",\n           POST /feedback, GET /admin/drift" else "");
      Pn_server.Server.join server
    | exception Pnrule.Serialize.Corrupt msg ->
      Printf.eprintf "error: cannot read model: %s\n" msg;
      exit 1
    | exception Pnrule.Registry.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "error: cannot bind %s:%d: %s (%s)\n" host port
        (Unix.error_message err) fn;
      exit 1
  in
  let model_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "model"; "m" ] ~docv:"MODEL.pn"
          ~doc:"Saved model to serve (exclusive with $(b,--registry)).")
  in
  let registry =
    Arg.(
      value
      & opt (some dir) None
      & info [ "registry" ] ~docv:"DIR"
          ~doc:
            "Versioned model registry directory: $(b,gen-N.model) files plus \
             a $(b,CURRENT) pointer. Serves the generation CURRENT names \
             (falling back to the highest loadable one) and enables staged \
             rollout via $(b,POST /admin/rollout) and one-command rollback \
             via $(b,POST /admin/rollback).")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(
      value & opt port_conv 8080
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; 0 picks an ephemeral port.")
  in
  let domains =
    let default =
      match Sys.getenv_opt "PNRULE_DOMAINS" with
      | Some raw -> (
        match Pn_util.Pool.domains_of_env raw with Ok d -> d | Error _ -> 1)
      | None -> min 4 (Domain.recommended_domain_count ())
    in
    Arg.(
      value & opt domains_conv default
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests in parallel (default: \
             $(b,PNRULE_DOMAINS) when set, else min(4, recommended)).")
  in
  let max_body =
    Arg.(
      value
      & opt (ranged_int ~what:"max body" ~lo:1 ~hi:4096) 64
      & info [ "max-body" ] ~docv:"MIB"
          ~doc:"Request body size limit in MiB; larger bodies get a 413.")
  in
  let max_rows =
    Arg.(
      value
      & opt (ranged_int ~what:"max rows" ~lo:1 ~hi:1_000_000_000) 1_000_000
      & info [ "max-rows" ] ~docv:"ROWS"
          ~doc:"Rows-per-request limit; longer feeds get a 413.")
  in
  let idle =
    Arg.(
      value & opt float 5.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close keep-alive connections idle longer than this.")
  in
  let deadline =
    Arg.(
      value
      & opt (ranged_float ~what:"deadline" ~lo:0.0 ~hi:86_400.0) 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request wall-clock budget; a predict request that overruns \
             it is answered 408. 0 (the default) disables the deadline.")
  in
  let backlog =
    Arg.(
      value
      & opt (ranged_int ~what:"backlog" ~lo:1 ~hi:65535) 128
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Kernel listen(2) backlog of the accepting socket.")
  in
  let queue_limit =
    Arg.(
      value
      & opt (ranged_int ~what:"queue limit" ~lo:1 ~hi:1_000_000) 256
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission limit: once in-flight requests plus \
             accepted-but-unserved connections reach this, new connections \
             are refused with 429 and a Retry-After header instead of \
             queueing behind the worker pool.")
  in
  let adapt =
    Arg.(
      value & flag
      & info [ "adapt" ]
          ~doc:
            "Online adaptation (requires $(b,--registry)): monitor per-rule \
             firing rates on predict/feedback traffic against the model's \
             training-time expectations, and on drift retrain in the \
             background from recent $(b,POST /feedback) labeled rows, \
             publish the result as the next registry generation and roll it \
             out through the staged (canary-warmed) path. Adds \
             $(b,POST /feedback) and $(b,GET /admin/drift).")
  in
  let window =
    Arg.(
      value
      & opt (ranged_int ~what:"window" ~lo:16 ~hi:100_000_000) 4096
      & info [ "window" ] ~docv:"ROWS"
          ~doc:
            "Drift window: rows scored between two firing-rate comparisons. \
             Smaller reacts faster but is noisier.")
  in
  let drift_threshold =
    Arg.(
      value
      & opt (ranged_float ~what:"drift threshold" ~lo:1e-6 ~hi:1e6) 3.0
      & info [ "drift-threshold" ] ~docv:"SCORE"
          ~doc:
            "Page-Hinkley score above which any single rule's accumulated \
             deviation counts as drift. Higher needs more (or stronger) \
             evidence.")
  in
  let reservoir =
    Arg.(
      value
      & opt (ranged_int ~what:"reservoir" ~lo:1 ~hi:1_000_000_000) 100_000
      & info [ "reservoir" ] ~docv:"ROWS"
          ~doc:
            "Most recent labeled feedback rows retained for background \
             retraining; older rows are evicted.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online prediction daemon: an HTTP/1.1 server that keeps the \
          model resident and scores POSTed CSV feeds through the same \
          streaming pipeline as $(b,predict). Endpoints: $(b,POST /predict) \
          (CSV body with header row, or a binary columnar body with \
          $(b,Content-Type: application/x-pnrule-columnar); query parameters \
          $(b,scores=1), $(b,on-error=strict|skip|impute), \
          $(b,class-column=NAME)), \
          $(b,GET /healthz), $(b,GET /model), $(b,GET /metrics) (Prometheus \
          text format), and — with $(b,--registry) — $(b,POST /admin/rollout) \
          / $(b,POST /admin/rollback) for staged model flips. With \
          $(b,--adapt): $(b,POST /feedback) (labeled rows scored and fed to \
          the drift monitor and retrain reservoir) and $(b,GET /admin/drift) \
          (monitor + retrainer state as JSON). SIGHUP \
          hot-reloads the model; SIGTERM drains gracefully. Load shedding: \
          beyond $(b,--queue-limit) the daemon answers 429 + Retry-After.")
    Term.(
      const run $ verbose_arg $ model_file $ registry $ host $ port $ domains
      $ policy_arg $ chunk_arg $ max_body $ max_rows $ idle $ deadline
      $ backlog $ queue_limit $ adapt $ window $ drift_threshold $ reservoir)

(* ------------------------------------------------------------------ *)
(* shard                                                                *)
(* ------------------------------------------------------------------ *)

let shard_cmd =
  let run verbose registry host port backends domains policy chunk max_body_mb
      max_rows idle deadline queue_limit probe_interval fail_threshold =
    setup_logs verbose;
    (* Fail fast on a registry the backends could not serve from —
       otherwise the supervisor would spawn a crash-looping fleet. *)
    (match Pnrule.Registry.open_dir registry with
    | reg -> (
      match Pnrule.Registry.load_initial reg with
      | _ -> ()
      | exception Pnrule.Registry.Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
    | exception Pnrule.Registry.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1);
    let policy_str =
      match policy with
      | Pn_data.Ingest_report.Strict -> "strict"
      | Pn_data.Ingest_report.Skip -> "skip"
      | Pn_data.Ingest_report.Impute -> "impute"
    in
    let backend_argv ~index:_ ~port =
      [|
        Sys.executable_name;
        "serve";
        "--registry";
        registry;
        "--host";
        "127.0.0.1";
        "--port";
        string_of_int port;
        "--domains";
        string_of_int domains;
        "--on-error";
        policy_str;
        "--chunk";
        string_of_int chunk;
        "--max-body";
        string_of_int max_body_mb;
        "--max-rows";
        string_of_int max_rows;
        "--deadline";
        string_of_float deadline;
        "--queue-limit";
        string_of_int queue_limit;
      |]
    in
    let config =
      {
        Pn_shard.Router.default_config with
        host;
        port;
        domains = min 4 (backends + 1);
        backends;
        backend_argv;
        max_body = max_body_mb * 1024 * 1024;
        idle_timeout = idle;
        probe_interval;
        fail_threshold;
        queue_limit;
      }
    in
    match Pn_shard.Router.start ~config () with
    | router ->
      Pn_shard.Router.install_signals router;
      Printf.printf
        "pnrule shard router listening on http://%s:%d/ (%d backend%s x %d \
         worker domain%s)\n\
         endpoints: POST /predict, POST /feedback, GET /healthz, GET /model, \
         GET /metrics,\n\
        \           POST /admin/rollout, POST /admin/rollback, GET \
         /admin/backends\n\
         SIGTERM/SIGINT drains the router, then rolls the fleet down\n\
         %!"
        host
        (Pn_shard.Router.port router)
        backends
        (if backends = 1 then "" else "s")
        domains
        (if domains = 1 then "" else "s");
      Pn_shard.Router.join router
    | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "error: cannot bind %s:%d: %s (%s)\n" host port
        (Unix.error_message err) fn;
      exit 1
  in
  let registry =
    Arg.(
      required
      & opt (some dir) None
      & info [ "registry" ] ~docv:"DIR"
          ~doc:
            "Versioned model registry directory shared by every backend \
             shard. Required: the sharded tier exists to roll generations \
             across a fleet.")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address the router binds.")
  in
  let port =
    Arg.(
      value & opt port_conv 8080
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"Router TCP port; 0 picks an ephemeral port. Backends bind \
                ephemeral loopback ports of their own.")
  in
  let backends =
    Arg.(
      value
      & opt (ranged_int ~what:"backends" ~lo:1 ~hi:64) 2
      & info [ "backends" ] ~docv:"N"
          ~doc:"Backend shard processes to spawn and supervise.")
  in
  let domains =
    let default =
      match Sys.getenv_opt "PNRULE_DOMAINS" with
      | Some raw -> (
        match Pn_util.Pool.domains_of_env raw with Ok d -> d | Error _ -> 1)
      | None -> min 4 (Domain.recommended_domain_count ())
    in
    Arg.(
      value & opt domains_conv default
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains per backend shard (the router itself uses \
                $(b,min(4, backends+1)) domains for proxying).")
  in
  let max_body =
    Arg.(
      value
      & opt (ranged_int ~what:"max body" ~lo:1 ~hi:4096) 64
      & info [ "max-body" ] ~docv:"MIB"
          ~doc:"Request body size limit in MiB; larger bodies get a 413.")
  in
  let max_rows =
    Arg.(
      value
      & opt (ranged_int ~what:"max rows" ~lo:1 ~hi:1_000_000_000) 1_000_000
      & info [ "max-rows" ] ~docv:"ROWS"
          ~doc:"Rows-per-request limit passed to every backend.")
  in
  let idle =
    Arg.(
      value & opt float 5.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close keep-alive client connections idle longer than this.")
  in
  let deadline =
    Arg.(
      value
      & opt (ranged_float ~what:"deadline" ~lo:0.0 ~hi:86_400.0) 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request wall-clock budget passed to every backend.")
  in
  let queue_limit =
    Arg.(
      value
      & opt (ranged_int ~what:"queue limit" ~lo:1 ~hi:1_000_000) 256
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Router admission limit: beyond it new connections get 429 + \
             Retry-After. Also passed to every backend.")
  in
  let probe_interval =
    Arg.(
      value
      & opt (ranged_float ~what:"probe interval" ~lo:0.01 ~hi:60.0) 0.05
      & info [ "probe-interval" ] ~docv:"SECONDS"
          ~doc:"Supervisor tick: health probes, reaping, respawn checks.")
  in
  let fail_threshold =
    Arg.(
      value
      & opt (ranged_int ~what:"fail threshold" ~lo:1 ~hi:100) 3
      & info [ "fail-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive failed probes before a healthy shard is marked \
             suspect (and a suspect shard is killed for respawn).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run the sharded serving tier: spawn and supervise $(b,--backends) \
          $(b,pnrule serve) processes on loopback ports, all serving from the \
          same $(b,--registry), and route $(b,POST /predict) / \
          $(b,POST /feedback) across the healthy ones with transparent \
          failover — a shard that dies mid-request is retried on another, \
          reaped, and respawned with exponential backoff. $(b,GET /healthz), \
          $(b,GET /model) and $(b,GET /metrics) aggregate the fleet (backend \
          series summed; router series under $(b,pnrule_router_*)). \
          $(b,POST /admin/rollout) / $(b,/admin/rollback) flip generations \
          one shard at a time, aborting on the first warm failure. When every \
          shard is down the router answers 503 + Retry-After and keeps \
          running. SIGTERM drains the router, then rolls SIGTERM across the \
          fleet.")
    Term.(
      const run $ verbose_arg $ registry $ host $ port $ backends $ domains
      $ policy_arg $ chunk_arg $ max_body $ max_rows $ idle $ deadline
      $ queue_limit $ probe_interval $ fail_threshold)

(* ------------------------------------------------------------------ *)
(* eval                                                                 *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let run verbose train_file test_file class_column policy target meth stratified rp rn p1 metric =
    setup_logs verbose;
    let train = load_dataset ?class_column ~policy train_file in
    let test = load_dataset ?class_column ~policy test_file in
    let target = resolve_target train target in
    let params = pnrule_params rp rn p1 metric in
    let spec = spec_of_method meth stratified params in
    let r = Pn_harness.Experiment.run spec ~train ~test ~target in
    Printf.printf "%s: recall=%.4f precision=%.4f F=%.4f (train %.1fs)\n"
      r.Pn_harness.Experiment.method_name r.recall r.precision r.f_measure
      r.train_seconds
  in
  let train_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRAIN.csv")
  in
  let test_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TEST.csv")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Train on one CSV, evaluate on another.")
    Term.(
      const run $ verbose_arg $ train_file $ test_file $ class_column_arg
      $ policy_arg $ target_arg $ method_arg $ stratified_arg $ rp_arg
      $ rn_arg $ p1_arg $ metric_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run model n seed out =
    let ds =
      match model with
      | "syngen" -> Pn_synth.General.generate Pn_synth.General.default ~seed ~n
      | "kdd-train" -> Pn_synth.Kddcup.train ~seed ~n
      | "kdd-test" -> Pn_synth.Kddcup.test ~seed ~n
      | name when String.length name = 5 && String.sub name 0 4 = "nsyn" ->
        Pn_synth.Numerical.generate
          (Pn_synth.Numerical.nsyn (int_of_string (String.sub name 4 1)))
          ~seed ~n
      | name when String.length name = 4 && String.sub name 0 3 = "coa" ->
        Pn_synth.Categorical.generate
          (Pn_synth.Categorical.coa (int_of_string (String.sub name 3 1)))
          ~seed ~n
      | name when String.length name = 5 && String.sub name 0 4 = "coad" ->
        Pn_synth.Categorical.generate
          (Pn_synth.Categorical.coad (int_of_string (String.sub name 4 1)))
          ~seed ~n
      | other ->
        Printf.eprintf
          "error: unknown model %S (try nsyn1..nsyn6, coa1..coa6, coad1..coad4, \
           syngen, kdd-train, kdd-test)\n"
          other;
        exit 1
    in
    let lower = String.lowercase_ascii out in
    if Filename.check_suffix lower ".arff" then Pn_data.Arff_io.save ds out
    else if Filename.check_suffix lower ".pnc" then Pn_data.Columnar.save ds out
    else Pn_data.Csv_io.save ds out;
    Printf.printf "wrote %d records to %s\n" (Pn_data.Dataset.n_records ds) out
  in
  let model =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL")
  in
  let n =
    Arg.(value & opt int 100_000 & info [ "n" ] ~docv:"N" ~doc:"Records to generate.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate one of the paper's synthetic datasets; the output format \
          follows the extension ($(b,.csv), $(b,.arff), or binary columnar \
          $(b,.pnc)).")
    Term.(const run $ model $ n $ seed $ out)

(* ------------------------------------------------------------------ *)
(* inspect                                                              *)
(* ------------------------------------------------------------------ *)

let inspect_cmd =
  let run data class_column policy =
    let ds = load_dataset ?class_column ~policy data in
    Format.printf "%a@." Pn_data.Summary.pp ds
  in
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a dataset's schema and class balance.")
    Term.(const run $ data $ class_column_arg $ policy_arg)

let () =
  let doc = "two-phase rule induction for rare classes (PNrule)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pnrule" ~version:"1.0.0" ~doc)
          [ train_cmd; eval_cmd; predict_cmd; ingest_cmd; serve_cmd; shard_cmd;
            gen_cmd; inspect_cmd ]))
